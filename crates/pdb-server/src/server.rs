//! The TCP server: listener, worker thread pool and request dispatch.
//!
//! Built on `std::net` only.  The listener thread accepts connections and
//! hands them to a fixed pool of worker threads over an MPSC queue; each
//! worker reads newline-delimited JSON requests off its connection,
//! dispatches them against the shared [`SessionManager`], and writes one
//! response line per request.  A `shutdown` request flips the shared stop
//! flag and wakes the listener; the queue is then drained — every
//! connection already accepted finishes its in-flight request before its
//! worker exits (idle connections poll the flag on a short read timeout,
//! so a parked persistent client never wedges the drain) — and
//! [`Server::run`] returns after joining the pool.
//!
//! **Connections, not requests, are the pooled unit**: a worker serves
//! one connection for that connection's lifetime, so at most `--threads`
//! *connections* are served concurrently and the `threads + 1`-th
//! concurrent persistent client waits in the accept queue until a slot
//! frees.  Size `--threads` to the expected number of concurrent
//! long-lived clients; the per-session locking (see
//! [`crate::session`]) is what keeps one slow evaluation from blocking
//! other *sessions* once their connections hold a worker.

use crate::protocol::{self, Request, Response, ServerStats};
use crate::session::SessionManager;
use pdb_obs::metrics as obs;
use pdb_store::FlushPolicy;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

/// How a [`Server`] is configured
/// (`pdb serve --addr --threads --shards --store-dir --compact-every`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:7878`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.  Each worker owns one
    /// connection for its lifetime, so this is also the maximum number of
    /// concurrently served connections — size it to the expected number
    /// of concurrent persistent clients.
    pub threads: usize,
    /// Shards of the session store.
    pub shards: usize,
    /// Durable store directory.  When set, [`Server::bind`] recovers
    /// every journalled session from it (WAL replay through the delta
    /// engine) and every session-mutating request is journalled, fsync'd
    /// per record.  `None` keeps sessions purely in memory.
    pub store_dir: Option<String>,
    /// Auto-compaction threshold: checkpoint all sessions and truncate
    /// the log once this many records accumulate (0 disables).
    pub compact_every: u64,
    /// How journal appends reach disk (only meaningful with a
    /// `store_dir`): [`FlushPolicy::PerRecord`] fsyncs every record — the
    /// durability oracle — while [`FlushPolicy::GroupCommit`] batches
    /// concurrent appends into one fsync per window (see
    /// `pdb-store`'s group-commit flusher).
    pub flush: FlushPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            threads: 4,
            shards: 8,
            store_dir: None,
            compact_every: 1024,
            flush: FlushPolicy::PerRecord,
        }
    }
}

/// A bound (but not yet running) cleaning service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    threads: usize,
}

impl Server {
    /// Bind the listener and build the session store.  With a
    /// `store_dir` configured this is also where crash recovery happens:
    /// the write-ahead log is replayed (one delta pass per journalled
    /// probe) and every recovered session is live before the first
    /// connection is accepted.  The server does not accept connections
    /// until [`run`](Self::run) is called.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let manager = match &config.store_dir {
            Some(dir) => {
                let (store, recovery) = pdb_store::Store::open_with_policy(
                    std::path::Path::new(dir),
                    config.flush,
                    &pdb_gen::spec::build_dataset,
                )
                .map_err(|err| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string())
                })?;
                SessionManager::with_store(
                    config.shards,
                    Arc::new(store),
                    recovery,
                    config.compact_every,
                )
            }
            None => SessionManager::new(config.shards),
        };
        Ok(Self {
            listener,
            manager: Arc::new(manager),
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: Arc::new(AtomicU64::new(0)),
            threads: config.threads.max(1),
        })
    }

    /// Sessions recovered from the store at bind time (0 without a
    /// store).  Lets operators and tests confirm a recovery happened
    /// before any client connects.
    pub fn sessions_recovered(&self) -> u64 {
        self.manager.sessions_created()
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until a `shutdown` request arrives,
    /// then drain in-flight requests and return.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        // Bounded: with every worker busy, at most `threads` further
        // accepted connections are buffered (the send below then blocks),
        // so excess clients genuinely wait in the OS accept backlog as
        // documented instead of accumulating in an unbounded queue.
        let (queue_tx, queue_rx) = mpsc::sync_channel::<TcpStream>(self.threads);
        let queue_rx = Arc::new(Mutex::new(queue_rx));

        let workers: Vec<thread::JoinHandle<()>> = (0..self.threads)
            .map(|_| {
                let queue_rx = Arc::clone(&queue_rx);
                let ctx = HandlerContext {
                    manager: Arc::clone(&self.manager),
                    shutdown: Arc::clone(&self.shutdown),
                    requests: Arc::clone(&self.requests),
                    addr,
                    threads: self.threads,
                };
                thread::spawn(move || loop {
                    // Take the queue lock only long enough to pop one
                    // connection; handling happens outside it.  Poisoning
                    // recovery: the lock only ever guards `recv()`, which
                    // cannot leave the channel torn, so one worker's panic
                    // must not idle the rest of the pool.
                    let conn = queue_rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                    match conn {
                        Ok(stream) => handle_connection(stream, &ctx),
                        Err(_) => break, // queue closed: drain complete
                    }
                })
            })
            .collect();

        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection (or a raced client) is dropped
            }
            match conn {
                Ok(stream) => {
                    // A send can only fail after every worker exited, which
                    // only happens once shutdown already drained the queue.
                    if queue_tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => {
                    // Persistent accept failures (e.g. EMFILE when the fd
                    // limit is hit) yield Err immediately and repeatedly;
                    // back off briefly instead of busy-spinning a core.
                    thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            }
        }

        // Close the queue: workers finish the connections already accepted
        // (draining their in-flight requests) and then exit.
        drop(queue_tx);
        for worker in workers {
            // pdb-analyze: allow(error-swallow): join only errs if the worker panicked; shutdown must still reap the rest
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Everything a worker needs to serve one connection.
struct HandlerContext {
    manager: Arc<SessionManager>,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    addr: SocketAddr,
    threads: usize,
}

/// How often an idle worker wakes from a blocking read to re-check the
/// shutdown flag.  Without the timeout, a worker parked on a persistent
/// connection that never sends another request would block `run`'s final
/// join forever, hanging shutdown.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// Serve one connection: one response line per request line, until the
/// client disconnects or the server begins shutting down.
fn handle_connection(stream: TcpStream, ctx: &HandlerContext) {
    // Nagle off: request/response lines are tiny and latency-bound.
    // Best-effort — a socket that cannot disable Nagle still serves
    // correctly, just with worse latency.
    // pdb-analyze: allow(error-swallow): latency knob only; correctness does not depend on it
    let _ = stream.set_nodelay(true);
    // The read timeout is NOT best-effort: the shutdown drain relies on
    // idle workers waking from blocked reads (see IDLE_POLL).  A
    // connection whose socket cannot take a timeout would park a worker
    // forever, so drop it instead of serving it.
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();

    loop {
        // A timeout mid-line leaves the bytes read so far in `line`; the
        // next pass appends to them, so split packets reassemble cleanly.
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return, // client disconnected
                Ok(_) => break,  // one full line (or EOF mid-line)
                Err(err)
                    if matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if ctx.shutdown.load(Ordering::SeqCst) {
                        return; // idle connection: nothing in flight to drain
                    }
                }
                Err(_) => return,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::decode_request(line.trim_end()) {
            Ok(request) => {
                // Per-verb counters + latency span: the span covers the
                // handler only (not the socket write), so the histogram
                // measures the work a verb costs, not the client's
                // draining speed.
                let verb = request.verb();
                obs::SERVER_REQUESTS_TOTAL.with(verb).inc();
                let span = obs::SERVER_REQUEST_LATENCY_NS.with(verb).span();
                let response = dispatch(request, ctx);
                span.finish();
                if matches!(response, Response::Error(_)) {
                    obs::SERVER_ERRORS_TOTAL.with("handler").inc();
                }
                response
            }
            Err(err) => {
                obs::SERVER_ERRORS_TOTAL.with("decode").inc();
                Response::error(format!("malformed request: {err}"))
            }
        };
        ctx.requests.fetch_add(1, Ordering::Relaxed);
        let payload = protocol::encode(&response).unwrap_or_else(|err| {
            format!("{{\"error\":{{\"message\":\"encoding failed: {err}\"}}}}")
        });
        if writeln!(writer, "{payload}").and_then(|()| writer.flush()).is_err() {
            obs::SERVER_ERRORS_TOTAL.with("io").inc();
            return;
        }
        // Finish the in-flight request, then stop picking up new ones so
        // shutdown can drain: a persistent client must reconnect (and will
        // be refused once the listener stopped).
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Route one request to the session store.
fn dispatch(request: Request, ctx: &HandlerContext) -> Response {
    let manager = &ctx.manager;
    match request {
        Request::CreateSession(req) => match manager.create(&req) {
            Ok(created) => Response::SessionCreated(created),
            Err(err) => Response::error(err),
        },
        Request::RegisterQuery(req) => match manager.register_query(&req) {
            Ok(registered) => Response::QueryRegistered(registered),
            Err(err) => Response::error(err),
        },
        Request::Evaluate(req) => match manager.with_session(req.session, |s| s.evaluate()) {
            Ok(answers) => Response::Answers(answers),
            Err(err) => Response::error(err),
        },
        Request::Quality(req) => match manager.with_session(req.session, |s| s.quality()) {
            Ok(report) => Response::QualityReport(report),
            Err(err) => Response::error(err),
        },
        Request::RecommendProbe(req) => {
            match manager.with_session(req.session, |s| s.recommend_probe()) {
                Ok(advice) => Response::ProbeRecommendation(advice),
                Err(err) => Response::error(err),
            }
        }
        // `apply_probe` is the historical alias of `apply_mutation`: same
        // payload, same handler, same response kind.
        Request::ApplyMutation(req) | Request::ApplyProbe(req) => {
            match manager.apply_mutation(&req) {
                Ok(applied) => {
                    manager.record_probe();
                    // Compaction is triggered by the mutation path (the
                    // only verbs that grow the log proportionally to work
                    // done) but runs on its own thread: checkpointing
                    // every live session must not stall the mutation that
                    // happened to trip the threshold.  A failed compaction
                    // must not fail any mutation either — it is applied
                    // *and* journalled — so errors only surface
                    // operationally (the log keeps growing until a
                    // compaction succeeds).
                    if manager.begin_compaction() {
                        let manager = Arc::clone(manager);
                        thread::spawn(move || {
                            let _ = manager.run_claimed_compaction();
                        });
                    }
                    Response::ProbeApplied(applied)
                }
                Err(err) => Response::error(err),
            }
        }
        Request::DropSession(req) => match manager.drop_session(req.session) {
            Ok(dropped) => Response::SessionDropped(dropped),
            Err(err) => Response::error(err),
        },
        Request::Persist(req) => match manager.persist(req.session) {
            Ok(persisted) => Response::Persisted(persisted),
            Err(err) => Response::error(err),
        },
        Request::Restore(req) => match manager.restore(&req) {
            Ok(created) => Response::SessionCreated(created),
            Err(err) => Response::error(err),
        },
        Request::FetchChunk(req) => match manager.fetch_chunk(&req) {
            Ok(chunk) => Response::Chunk(chunk),
            Err(err) => Response::error(err),
        },
        Request::Stats => Response::Stats(ServerStats {
            sessions_live: manager.sessions_live(),
            sessions_created: manager.sessions_created(),
            requests_served: ctx.requests.load(Ordering::Relaxed) + 1,
            probes_applied: manager.probes_applied(),
            shards: manager.num_shards(),
            threads: ctx.threads,
            durable: manager.store().is_some(),
            connect_retries: 0,
            flush_error: manager.store().and_then(|store| store.flush_error()),
            sessions: manager.session_stats(),
        }),
        Request::Metrics => Response::Metrics(pdb_obs::metrics::snapshot().into()),
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag; the dummy
            // connection is dropped unserved.  A wildcard bind address
            // (0.0.0.0 / ::) is not connectable on every platform, so the
            // self-wake targets the loopback of the bound port instead.
            let wake_ip = if ctx.addr.ip().is_unspecified() {
                match ctx.addr.ip() {
                    std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                }
            } else {
                ctx.addr.ip()
            };
            // pdb-analyze: allow(error-swallow): best-effort self-wake; the accept loop also polls the flag on its own timer
            let _ = TcpStream::connect(SocketAddr::new(wake_ip, ctx.addr.port()));
            Response::ShuttingDown
        }
    }
}
