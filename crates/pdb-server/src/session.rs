//! Persistent evaluation sessions and the sharded store that holds them.
//!
//! A [`Session`] pins one database together with a live
//! [`BatchQuality`] evaluation: the paper's adaptive-cleaning loop is
//! stateful (each probe outcome must be folded into the evaluation it was
//! planned from), so the server keeps the shared PSR run alive across
//! requests instead of rebuilding the world per call.  A probe is then one
//! O(k_max)-per-affected-row delta pass shared by every registered query —
//! never a full PSR rebuild (unless the naive
//! [`EvalMode::Rebuild`] baseline is explicitly requested).
//!
//! The [`SessionManager`] shards its `session-id → session` map across `N`
//! independent [`RwLock`]s, keyed by a hash of the session id: concurrent
//! requests touching sessions on different shards never contend, and
//! because each session is boxed behind its own [`Mutex`] (an `Arc` cloned
//! out of the shard under the read lock), one slow evaluation blocks only
//! its own session — the shard map, and every other session on the same
//! shard, stay available.

use crate::protocol::{
    encode_chunk_data, Answers, ApplyMutation, ApplyProbe, CreateSession, EvalMode, FetchChunk,
    Persisted, ProbeAdvice, ProbeApplied, ProbeRecommendation, QualityReport, QueryRegistered,
    RegisterQuery, RestoreSession, SessionCreated, SessionRef, SessionStat, SnapshotChunk,
    CHUNK_SEED,
};
use pdb_clean::{best_single_probe, CleaningContext, CleaningSetup};
use pdb_core::{DbError, RankedDatabase, Result as DbResult};
use pdb_engine::delta::{DeltaStats, XTupleMutation};
use pdb_gen::spec::build_dataset;
use pdb_quality::{BatchCollapseUpdate, BatchQuality, WeightedQuery};
use pdb_store::store::{CompactionStats, RecoveredState, Recovery, SessionCheckpoint};
use pdb_store::{DatasetSpec, RecoveredSession, Store, WalRecord};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Upper bound on one `fetch_chunk` reply's payload, whatever the client
/// asked for: chunks are hex-encoded into a JSON line, so an unbounded
/// `max_len` would balloon one reply line past what peers should buffer.
const MAX_CHUNK_LEN: u64 = 4 << 20;

/// One live session: a database, its cleaning parameters and (once a query
/// is registered) the shared batch evaluation serving every registered
/// query from one PSR run.
#[derive(Debug)]
pub struct Session {
    specs: Vec<WeightedQuery>,
    state: State,
    probe_cost: u64,
    probe_success: f64,
    /// When the session was created (or recovered) in this process.
    created: Instant,
    /// Probes applied over the session's lifetime (survives recovery via
    /// the checkpoint record's counter).
    probes: u64,
    /// Set (under the session's own lock) when the session is dropped,
    /// *before* it leaves the shard map: a racing request that already
    /// cloned the session's `Arc` out of the map must not mutate — or
    /// journal records for — a session whose `drop_session` record is
    /// already in the log, or the log becomes unreplayable.
    dropped: bool,
    /// Set when an in-memory mutation succeeded but its journal append
    /// failed: the live state is now *ahead of* the durable log, so a
    /// restart would silently serve different results.  The session
    /// fail-stops (every serving verb errors) until a successful
    /// `persist` re-checkpoints the live state — which makes log and
    /// memory agree again — or the session is dropped.
    journal_fault: Option<String>,
}

/// The evaluation state: until the first query is registered there is
/// nothing to evaluate, so the session only holds the database.  The live
/// evaluation is boxed: it dwarfs the idle variant, and sessions move
/// (into the shard map, out of `register_query`) while in either state.
#[derive(Debug)]
enum State {
    /// No registered queries yet.
    Idle(RankedDatabase),
    /// The live shared evaluation (owns the database).
    Live(Box<BatchQuality<'static>>),
}

impl Session {
    fn new(db: RankedDatabase, probe_cost: u64, probe_success: f64) -> DbResult<Self> {
        if probe_cost == 0 {
            return Err(DbError::invalid_parameter("probe_cost must be at least 1"));
        }
        if !(0.0..=1.0).contains(&probe_success) || !probe_success.is_finite() {
            return Err(DbError::InvalidProbability {
                prob: probe_success,
                context: "session probe success probability".to_string(),
            });
        }
        Ok(Self {
            specs: Vec::new(),
            state: State::Idle(db),
            probe_cost,
            probe_success,
            created: Instant::now(),
            probes: 0,
            dropped: false,
            journal_fault: None,
        })
    }

    /// Fail if the session was dropped or its live state diverged from
    /// the durable log.
    fn ensure_journalled(&self) -> DbResult<()> {
        self.ensure_not_dropped()?;
        match &self.journal_fault {
            None => Ok(()),
            Some(fault) => Err(DbError::invalid_parameter(format!(
                "session state diverged from the durable log (journalling failed: {fault}); \
                 send persist to re-checkpoint it, or drop_session"
            ))),
        }
    }

    /// Fail if the session was dropped (it may still be reachable through
    /// an `Arc` cloned out of the shard map before the removal).
    pub(crate) fn ensure_not_dropped(&self) -> DbResult<()> {
        if self.dropped {
            return Err(DbError::invalid_parameter("session was dropped"));
        }
        Ok(())
    }

    /// Mark the session dropped (called under its lock, after the drop
    /// record is journalled and before the shard-map removal).
    pub(crate) fn mark_dropped(&mut self) {
        self.dropped = true;
    }

    /// Record a journal-append failure (see `journal_fault`).
    pub(crate) fn set_journal_fault(&mut self, fault: impl Into<String>) {
        self.journal_fault = Some(fault.into());
    }

    /// A successful checkpoint captured the live state into the store:
    /// log and memory agree again.
    pub(crate) fn clear_journal_fault(&mut self) {
        self.journal_fault = None;
    }

    /// Rebuild a session from what the store recovered: the replayed
    /// evaluation state slots straight back in, counters included.
    pub fn from_recovered(recovered: RecoveredSession) -> Self {
        let RecoveredSession { probe_cost, probe_success, specs, probes, state, .. } = recovered;
        let state = match state {
            RecoveredState::Idle(db) => State::Idle(db),
            RecoveredState::Live(batch) => State::Live(batch),
        };
        Self {
            specs,
            state,
            probe_cost,
            probe_success,
            created: Instant::now(),
            probes,
            dropped: false,
            journal_fault: None,
        }
    }

    /// The session's per-session counters for the `stats` verb.
    pub fn stat(&self, id: u64) -> SessionStat {
        SessionStat {
            session: id,
            age_ms: self.created.elapsed().as_millis() as u64,
            queries: self.specs.len(),
            probes: self.probes,
        }
    }

    /// The session's full durable state (cloned), as a checkpoint for the
    /// store.
    pub fn checkpoint_state(&self, id: u64) -> SessionCheckpoint {
        SessionCheckpoint {
            session: id,
            db: self.database().clone(),
            specs: self.specs.clone(),
            probe_cost: self.probe_cost,
            probe_success: self.probe_success,
            probes: self.probes,
        }
    }

    /// The session's current database version.
    pub fn database(&self) -> &RankedDatabase {
        match &self.state {
            State::Idle(db) => db,
            State::Live(batch) => batch.database(),
        }
    }

    fn live(&self) -> DbResult<&BatchQuality<'static>> {
        match &self.state {
            State::Live(batch) => Ok(batch),
            State::Idle(_) => Err(DbError::invalid_parameter(
                "session has no registered queries yet; send register_query first",
            )),
        }
    }

    fn live_mut(&mut self) -> DbResult<&mut BatchQuality<'static>> {
        match &mut self.state {
            State::Live(batch) => Ok(batch),
            State::Idle(_) => Err(DbError::invalid_parameter(
                "session has no registered queries yet; send register_query first",
            )),
        }
    }

    /// Register one weighted query: the query set is re-planned and the
    /// shared PSR run re-executed at the (possibly new) `k_max`.
    /// Registration is the expensive, rare operation; probes stay on the
    /// delta path.
    pub fn register_query(&mut self, req: &RegisterQuery) -> DbResult<QueryRegistered> {
        self.ensure_journalled()?;
        let mut specs = self.specs.clone();
        specs.push(WeightedQuery::weighted(req.query, req.weight));
        let db = self.database().clone();
        let batch = BatchQuality::from_owned(db, specs.clone())?;
        let registered = QueryRegistered {
            session: req.session,
            index: specs.len() - 1,
            k_max: batch.evaluation().k_max(),
        };
        self.specs = specs;
        self.state = State::Live(Box::new(batch));
        Ok(registered)
    }

    /// Answer every registered query from the shared matrix.
    pub fn evaluate(&self) -> DbResult<Answers> {
        self.ensure_journalled()?;
        Ok(Answers { answers: self.live()?.answers()? })
    }

    /// Per-query and aggregate quality plus the aggregate decomposition.
    pub fn quality(&self) -> DbResult<QualityReport> {
        self.ensure_journalled()?;
        let batch = self.live()?;
        Ok(QualityReport {
            qualities: batch.quality_vector(),
            weights: batch.weights().to_vec(),
            aggregate: batch.aggregate_quality(),
            g: batch.aggregate_breakdown(),
        })
    }

    /// The cleaning setup of the current database version (uniform probe
    /// cost / success, re-derived so it always matches the x-tuple count —
    /// null collapses shrink the database).
    fn cleaning_setup(&self) -> DbResult<CleaningSetup> {
        CleaningSetup::uniform(self.database().num_x_tuples(), self.probe_cost, self.probe_success)
    }

    /// The single probe maximizing the expected aggregate improvement.
    pub fn recommend_probe(&self) -> DbResult<ProbeAdvice> {
        self.ensure_journalled()?;
        let batch = self.live()?;
        let ctx = CleaningContext::from_batch(batch);
        let setup = self.cleaning_setup()?;
        let recommendation = best_single_probe(&ctx, &setup)
            .map(|(x_tuple, expected_gain)| ProbeRecommendation { x_tuple, expected_gain });
        Ok(ProbeAdvice { recommendation })
    }

    /// The x-tuple index a mutation actually targets: an
    /// [`XTupleMutation::Insert`] is append-only, so its target is always
    /// the *current* x-tuple count (clients cannot know it; the wire
    /// `x_tuple` field is ignored for inserts); every other mutation
    /// targets the index named on the wire.  The manager journals this
    /// resolved index, which keeps WAL replay deterministic.
    pub fn mutation_target(&self, mutation: &XTupleMutation, x_tuple: usize) -> usize {
        match mutation {
            XTupleMutation::Insert { .. } => self.database().num_x_tuples(),
            _ => x_tuple,
        }
    }

    /// Fold one mutation — a probe outcome or a streaming insert/remove —
    /// into the session.
    pub fn apply_mutation(&mut self, req: &ApplyMutation) -> DbResult<ProbeApplied> {
        self.ensure_journalled()?;
        let l = self.mutation_target(&req.mutation, req.x_tuple);
        let update = match req.mode {
            EvalMode::Delta => self.live_mut()?.apply_collapse_in_place(l, &req.mutation)?,
            EvalMode::Rebuild => self.apply_mutation_rebuild(l, &req.mutation)?,
        };
        self.probes += 1;
        Ok(ProbeApplied { session: req.session, mode: req.mode, update })
    }

    /// Fold one observed probe outcome into the session: the historical
    /// alias of [`apply_mutation`](Self::apply_mutation) (a probe outcome
    /// *is* a mutation; [`ApplyProbe`] aliases [`ApplyMutation`]).
    pub fn apply_probe(&mut self, req: &ApplyProbe) -> DbResult<ProbeApplied> {
        self.apply_mutation(req)
    }

    /// The naive baseline: mutate the database and re-run the full
    /// PSR + TP pipeline from scratch.  Equivalent to the delta path up to
    /// floating-point round-off; `stats` is all zeros because no row was
    /// patched incrementally.
    fn apply_mutation_rebuild(
        &mut self,
        l: usize,
        mutation: &XTupleMutation,
    ) -> DbResult<BatchCollapseUpdate> {
        pdb_obs::metrics::ENGINE_FULL_REBUILDS_TOTAL.inc();
        let before = self.live()?.aggregate_quality();
        let mut db = self.database().clone();
        match mutation {
            XTupleMutation::CollapseToAlternative { keep_pos } => {
                db.collapse_x_tuple_in_place(l, *keep_pos)?
            }
            XTupleMutation::CollapseToNull => db.collapse_x_tuple_to_null_in_place(l)?,
            XTupleMutation::Reweight { probs } => db.reweight_x_tuple_in_place(l, probs)?,
            XTupleMutation::Insert { key, alternatives } => {
                db.insert_x_tuple_in_place(key.clone(), alternatives)?;
            }
            XTupleMutation::Remove => db.remove_x_tuple_in_place(l)?,
        }
        let batch = BatchQuality::from_owned(db, self.specs.clone())?;
        let update = BatchCollapseUpdate {
            qualities: batch.quality_vector(),
            aggregate: batch.aggregate_quality(),
            aggregate_delta: batch.aggregate_quality() - before,
            g: batch.aggregate_breakdown(),
            stats: DeltaStats::default(),
        };
        self.state = State::Live(Box::new(batch));
        Ok(update)
    }
}

/// Counters a [`SessionManager`] maintains for the `stats` verb.
#[derive(Debug, Default)]
struct Counters {
    live: AtomicU64,
    created: AtomicU64,
    probes: AtomicU64,
}

/// The sharded session store.
///
/// `shards[h(id)]` holds the sessions whose id hashes to shard `h(id)`;
/// each shard is an independent `RwLock<HashMap<..>>`, so lookups on
/// different shards proceed fully in parallel and a lookup only ever takes
/// the *read* side.  Sessions are handed out as `Arc<Mutex<Session>>`
/// clones: the shard lock is released before the session lock is taken, so
/// a long-running evaluation never blocks the store.
#[derive(Debug)]
pub struct SessionManager {
    shards: Vec<RwLock<HashMap<u64, Arc<Mutex<Session>>>>>,
    next_id: AtomicU64,
    counters: Counters,
    /// Serializes threshold-triggered compactions: a second trigger while
    /// one is running is dropped, not queued.
    compacting: std::sync::atomic::AtomicBool,
    /// The durable store, when the server runs with `--store-dir`: every
    /// session-mutating request is journalled into it (under the
    /// session's own lock, so a session's records and its in-memory
    /// state always agree in order).
    store: Option<Arc<Store>>,
    /// Auto-compaction threshold: once this many records accumulate
    /// since the last log truncation, an `apply_probe` triggers a full
    /// checkpoint + compaction pass (0 disables auto-compaction).
    compact_every: u64,
}

impl SessionManager {
    /// A store with the given number of shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            compacting: std::sync::atomic::AtomicBool::new(false),
            store: None,
            compact_every: 0,
        }
    }

    /// A manager journalling to `store`, rehydrated with everything the
    /// store recovered.
    pub fn with_store(
        shards: usize,
        store: Arc<Store>,
        recovery: Recovery,
        compact_every: u64,
    ) -> Self {
        let mut manager = Self::new(shards);
        manager.store = Some(store);
        manager.compact_every = compact_every;
        manager.next_id.store(recovery.next_session_id.max(1), Ordering::Relaxed);
        for recovered in recovery.sessions {
            let id = recovered.id;
            manager.publish_session(id, Session::from_recovered(recovered));
        }
        manager
    }

    /// The durable store backing this manager, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Number of shards the store was built with.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sessions currently live.
    pub fn sessions_live(&self) -> u64 {
        self.counters.live.load(Ordering::Relaxed)
    }

    /// Sessions created since the store was built.
    pub fn sessions_created(&self) -> u64 {
        self.counters.created.load(Ordering::Relaxed)
    }

    /// Probes applied across all sessions.
    pub fn probes_applied(&self) -> u64 {
        self.counters.probes.load(Ordering::Relaxed)
    }

    /// SplitMix64: id → shard index.  Session ids are sequential, so a
    /// plain modulo would put consecutive sessions on consecutive shards —
    /// fine — but hashing keeps the distribution independent of how ids
    /// are allocated.
    fn shard_of(&self, id: u64) -> usize {
        let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// The shard holding `id`.
    fn shard(&self, id: u64) -> &RwLock<HashMap<u64, Arc<Mutex<Session>>>> {
        // pdb-analyze: allow(panic-path): shard_of reduces modulo shards.len(), so the index is always in range
        &self.shards[self.shard_of(id)]
    }

    /// Lock the shard holding `id` for reading, recovering from
    /// poisoning.  The only code that ever runs under a shard lock is a
    /// `HashMap` get/insert/remove — none of which can leave the map
    /// observably torn when a panic unwinds through them — so a poisoned
    /// shard recovers its guard instead of condemning every future
    /// request that hashes to the same shard.
    fn read_shard(&self, id: u64) -> RwLockReadGuard<'_, HashMap<u64, Arc<Mutex<Session>>>> {
        self.shard(id).read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock the shard holding `id` for writing (same poisoning argument
    /// as [`read_shard`](Self::read_shard)).
    fn write_shard(&self, id: u64) -> RwLockWriteGuard<'_, HashMap<u64, Arc<Mutex<Session>>>> {
        self.shard(id).write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Make a ready session visible under the given id.
    fn publish_session(&self, id: u64, session: Session) {
        // Count before inserting: ids are predictable, so a racing
        // drop_session of this id must never decrement `live` below the
        // increment that funded it (underflow to u64::MAX).
        self.counters.live.fetch_add(1, Ordering::Relaxed);
        self.counters.created.fetch_add(1, Ordering::Relaxed);
        self.write_shard(id).insert(id, Arc::new(Mutex::new(session)));
    }

    /// Create a session over the requested dataset (journalled when a
    /// store is attached).
    ///
    /// The create record is appended **before** the session becomes
    /// visible: session ids are predictable, so a concurrent request
    /// could otherwise journal records for this id ahead of its create
    /// record — a log no recovery could replay.  On append failure
    /// nothing was published and the id is simply burned.
    ///
    /// A request may pin an explicit session id (`req.session`): a fleet
    /// router allocates ids fleet-wide so every shard agrees on them, and
    /// a shard must honor the router's choice.  A pinned id that already
    /// exists is an error, and the local allocator is bumped past every
    /// pinned id so locally allocated ids never collide with routed ones.
    pub fn create(&self, req: &CreateSession) -> DbResult<SessionCreated> {
        let db = build_dataset(&req.dataset)?;
        let info = SessionCreated { session: 0, tuples: db.len(), x_tuples: db.num_x_tuples() };
        let session = Session::new(db, req.probe_cost, req.probe_success)?;
        let id = match req.session {
            Some(id) => {
                if id == 0 {
                    return Err(DbError::invalid_parameter("session id 0 is reserved"));
                }
                if self.read_shard(id).contains_key(&id) {
                    return Err(DbError::invalid_parameter(format!("session {id} already exists")));
                }
                self.next_id.fetch_max(id + 1, Ordering::Relaxed);
                id
            }
            None => self.next_id.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(store) = &self.store {
            match &req.dataset {
                // A snapshot spec names a file *outside* the store; the
                // log must never depend on it surviving, so the data is
                // checkpointed into the store instead (exactly like the
                // restore verb).
                DatasetSpec::Snapshot { .. } => {
                    store.checkpoint(&session.checkpoint_state(id)).map_err(DbError::from)?;
                }
                _ => store
                    .append(&WalRecord::CreateSession {
                        session: id,
                        dataset: req.dataset.clone(),
                        probe_cost: req.probe_cost,
                        probe_success: req.probe_success,
                    })
                    .map_err(DbError::from)?,
            }
        }
        self.publish_session(id, session);
        Ok(SessionCreated { session: id, ..info })
    }

    /// Open a new session directly over a snapshot file.  With a store
    /// attached the snapshot's contents are immediately checkpointed into
    /// the store directory (before the session becomes visible, for the
    /// same record-ordering reason as [`create`](Self::create)), so the
    /// session's durability does not depend on the external file staying
    /// around.
    pub fn restore(&self, req: &RestoreSession) -> DbResult<SessionCreated> {
        self.create(&CreateSession {
            dataset: DatasetSpec::Snapshot { path: req.snapshot.clone() },
            probe_cost: req.probe_cost,
            probe_success: req.probe_success,
            session: req.session,
        })
    }

    /// Serve one chunk of a snapshot file from the store directory
    /// (`fetch_chunk` verb): a fresh replica rehydrates from a live peer
    /// by downloading the snapshot a `persist` just produced, then
    /// restoring it locally — no shared disk required.
    ///
    /// The snapshot name must be a bare file name produced by `persist`
    /// (no path separators, `.pdbs` suffix): the verb reads files *only*
    /// out of the store directory, never an arbitrary path.
    pub fn fetch_chunk(&self, req: &FetchChunk) -> DbResult<SnapshotChunk> {
        let store = self.store.as_ref().ok_or_else(|| {
            DbError::invalid_parameter(
                "server has no durable store; start it with --store-dir to use fetch_chunk",
            )
        })?;
        let name = &req.snapshot;
        if name.is_empty()
            || name.contains(['/', '\\'])
            || name.contains("..")
            || !name.ends_with(".pdbs")
        {
            return Err(DbError::invalid_parameter(format!(
                "fetch_chunk snapshot must be a bare .pdbs file name from persist, got {name:?}"
            )));
        }
        let path = store.dir().join(name);
        let bytes = std::fs::read(&path)
            .map_err(|err| DbError::invalid_parameter(format!("reading snapshot {name}: {err}")))?;
        let total = bytes.len() as u64;
        let offset = req.offset.min(total);
        let len = req.max_len.min(total - offset).min(MAX_CHUNK_LEN);
        let chunk = &bytes[offset as usize..(offset + len) as usize];
        Ok(SnapshotChunk {
            snapshot: name.clone(),
            offset,
            len,
            total,
            xxh64: pdb_store::hash::xxh64(chunk, CHUNK_SEED),
            data: encode_chunk_data(chunk),
            eof: offset + len >= total,
        })
    }

    /// Journal a record for a just-mutated session.  An append failure
    /// leaves the live state ahead of the log, so the session is marked
    /// faulted and fail-stops (see `Session::journal_fault`) instead of
    /// silently serving state a restart would not reproduce.
    fn journal_mutation(&self, s: &mut Session, record: WalRecord) -> DbResult<()> {
        let Some(store) = &self.store else { return Ok(()) };
        store.append(&record).map_err(|err| {
            s.set_journal_fault(err.to_string());
            DbError::invalid_parameter(format!(
                "the request was applied in memory but journalling it failed ({err}); the \
                 session is fail-stopped until a successful persist re-checkpoints it"
            ))
        })
    }

    /// Register a query in a session, journalling on success.  The append
    /// happens under the session's lock, so the log's record order
    /// matches the order the session changed in.
    pub fn register_query(&self, req: &RegisterQuery) -> DbResult<QueryRegistered> {
        self.with_session(req.session, |s| {
            let registered = s.register_query(req)?;
            let record = WalRecord::RegisterQuery {
                session: req.session,
                query: req.query,
                weight: req.weight,
            };
            self.journal_mutation(s, record)?;
            Ok(registered)
        })
    }

    /// Fold one mutation — a probe outcome or a streaming insert/remove —
    /// into a session, journalling the resolved mutation on success
    /// (under the session's lock, like
    /// [`register_query`](Self::register_query)).
    ///
    /// The journalled `x_tuple` is the *resolved* target index (for an
    /// insert, the pre-insert x-tuple count), captured before the
    /// mutation runs so replay re-applies it to the identical database
    /// version.
    pub fn apply_mutation(&self, req: &ApplyMutation) -> DbResult<ProbeApplied> {
        self.with_session(req.session, |s| {
            let x_tuple = s.mutation_target(&req.mutation, req.x_tuple);
            let applied = s.apply_mutation(req)?;
            let record = WalRecord::ApplyMutation {
                session: req.session,
                x_tuple,
                mutation: req.mutation.clone(),
            };
            self.journal_mutation(s, record)?;
            Ok(applied)
        })
    }

    /// Fold one observed probe outcome into a session: the historical
    /// alias of [`apply_mutation`](Self::apply_mutation) ([`ApplyProbe`]
    /// aliases [`ApplyMutation`]; both verbs journal the same record
    /// kind).
    pub fn apply_probe(&self, req: &ApplyProbe) -> DbResult<ProbeApplied> {
        self.apply_mutation(req)
    }

    /// Checkpoint one session into the store now (`persist` verb).
    pub fn persist(&self, id: u64) -> DbResult<Persisted> {
        let store = self.store.as_ref().ok_or_else(|| {
            DbError::invalid_parameter(
                "server has no durable store; start it with --store-dir to use persist",
            )
        })?;
        self.with_session(id, |s| {
            s.ensure_not_dropped()?;
            let state = s.checkpoint_state(id);
            let snapshot = store.checkpoint(&state).map_err(DbError::from)?;
            // The checkpoint captured the session's *live* state, so any
            // earlier journal divergence is healed.
            s.clear_journal_fault();
            Ok(Persisted { session: id, snapshot, tuples: state.db.len(), probes: state.probes })
        })
    }

    /// Ids of every live session (a racy snapshot; callers tolerate
    /// sessions vanishing before they get to them).
    fn session_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            // Poisoning recovery as in `read_shard`: map reads can't
            // observe torn state.
            ids.extend(shard.read().unwrap_or_else(PoisonError::into_inner).keys().copied());
        }
        ids.sort_unstable();
        ids
    }

    /// Per-session counters for the `stats` verb, ascending by id.
    ///
    /// Uses `try_lock` and skips sessions busy in a long evaluation: a
    /// monitoring poll must never hang behind one slow session (the
    /// whole point of per-session locking), so this is a racy snapshot
    /// and a session mid-request may be momentarily absent from it.
    pub fn session_stats(&self) -> Vec<SessionStat> {
        self.session_ids()
            .into_iter()
            .filter_map(|id| {
                let handle = self.session(id).ok()?;
                let stat = handle.try_lock().ok().map(|s| s.stat(id));
                stat
            })
            .collect()
    }

    /// Checkpoint every live session and truncate the log.  Records that
    /// land concurrently are never lost: each session's checkpoint is
    /// appended under that session's lock, and the truncation filter only
    /// drops records that precede their session's last checkpoint.
    pub fn compact(&self) -> DbResult<CompactionStats> {
        let store = self.store.as_ref().ok_or_else(|| {
            DbError::invalid_parameter("server has no durable store; nothing to compact")
        })?;
        for id in self.session_ids() {
            // A session dropped since the id snapshot is fine — skip it
            // (a checkpoint record after its drop record would resurrect
            // it on replay, so the dropped mark is checked under the
            // session lock).
            let _ = self.with_session(id, |s| {
                s.ensure_not_dropped()?;
                store.checkpoint(&s.checkpoint_state(id)).map_err(DbError::from)?;
                // Like persist: the checkpoint captured the live state,
                // healing any earlier journal divergence.
                s.clear_journal_fault();
                Ok(())
            });
        }
        store.truncate_log().map_err(DbError::from)
    }

    /// Whether the log has grown past the auto-compaction threshold (a
    /// cheap check the probe path uses before spawning the compaction).
    pub fn should_compact(&self) -> bool {
        self.compact_every > 0
            && self
                .store
                .as_ref()
                .is_some_and(|store| store.records_since_truncate() >= self.compact_every)
    }

    /// Claim the (single) compaction slot if the log needs compacting.
    /// The winner must call
    /// [`run_claimed_compaction`](Self::run_claimed_compaction) — on
    /// any thread; the probe path
    /// claims cheaply in the request thread and spawns only when it won,
    /// so an in-flight compaction costs concurrent probes nothing.
    pub fn begin_compaction(&self) -> bool {
        self.should_compact() && !self.compacting.swap(true, Ordering::Acquire)
    }

    /// Run the compaction claimed by
    /// [`begin_compaction`](Self::begin_compaction) and release the
    /// slot.
    pub fn run_claimed_compaction(&self) -> DbResult<CompactionStats> {
        let result = self.compact();
        self.compacting.store(false, Ordering::Release);
        result
    }

    /// Run [`compact`](Self::compact) if the log has grown past the
    /// configured threshold.  Returns what compaction did, if it ran;
    /// a compaction already in flight makes this a no-op rather than a
    /// queued second pass.
    pub fn maybe_compact(&self) -> DbResult<Option<CompactionStats>> {
        if self.begin_compaction() {
            self.run_claimed_compaction().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Look up a session (the returned handle outlives the shard lock).
    pub fn session(&self, id: u64) -> DbResult<Arc<Mutex<Session>>> {
        self.read_shard(id)
            .get(&id)
            .cloned()
            .ok_or_else(|| DbError::invalid_parameter(format!("unknown session {id}")))
    }

    /// Drop a session (journalled, so recovery does not resurrect it).
    ///
    /// The drop record is appended and the session marked dropped under
    /// the session's own lock, *before* it leaves the shard map: a
    /// racing request that cloned the session's `Arc` before the removal
    /// then observes the mark and fails instead of journalling records
    /// after the drop record (which would make the log unreplayable).
    /// On append failure nothing is dropped — the session keeps serving
    /// and the client may retry.
    pub fn drop_session(&self, id: u64) -> DbResult<SessionRef> {
        let handle = self.session(id)?;
        {
            // Poisoning recovery is safe here even though the session
            // state may be torn: the drop path only reads/writes the
            // `dropped` flag and journals a record that does not depend
            // on session state — and the session is being discarded.
            let mut session = handle.lock().unwrap_or_else(PoisonError::into_inner);
            session
                .ensure_not_dropped()
                .map_err(|_| DbError::invalid_parameter(format!("unknown session {id}")))?;
            if let Some(store) = &self.store {
                store.append(&WalRecord::DropSession { session: id }).map_err(DbError::from)?;
            }
            session.mark_dropped();
        }
        if self.write_shard(id).remove(&id).is_some() {
            self.counters.live.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(SessionRef { session: id })
    }

    /// Run `op` on a session under its own lock.
    pub fn with_session<T>(
        &self,
        id: u64,
        op: impl FnOnce(&mut Session) -> DbResult<T>,
    ) -> DbResult<T> {
        let handle = self.session(id)?;
        // A poisoned session lock means a previous request panicked
        // mid-mutation; its evaluation state may be torn, so the session
        // fail-stops (every request errors) until it is dropped — unlike
        // the shard locks, whose map state can never tear.
        let mut session = handle.lock().map_err(|_| {
            DbError::internal(format!(
                "session {id} is unavailable: a previous request panicked while mutating it; \
                 drop the session and restore it from its last snapshot"
            ))
        })?;
        op(&mut session)
    }

    /// Record one applied probe (for `stats`).
    pub fn record_probe(&self) {
        self.counters.probes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::DatasetSpec;
    use pdb_engine::queries::TopKQuery;

    fn create_req(dataset: DatasetSpec) -> CreateSession {
        CreateSession { dataset, probe_cost: 1, probe_success: 0.8, session: None }
    }

    fn register_req(session: u64, k: usize) -> RegisterQuery {
        RegisterQuery { session, query: TopKQuery::PTk { k, threshold: 0.4 }, weight: 1.0 }
    }

    #[test]
    fn session_lifecycle_on_udb1() {
        let mgr = SessionManager::new(4);
        let created = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap();
        assert_eq!(created.tuples, 7);
        assert_eq!(created.x_tuples, 4);
        assert_eq!(mgr.sessions_live(), 1);

        // No queries yet: evaluation verbs fail, registration fixes that.
        let id = created.session;
        assert!(mgr.with_session(id, |s| s.evaluate()).is_err());
        let reg = mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
        assert_eq!(reg.index, 0);
        assert_eq!(reg.k_max, 2);

        let answers = mgr.with_session(id, |s| s.evaluate()).unwrap();
        assert_eq!(answers.answers.len(), 1);
        assert_eq!(answers.answers[0].len(), 3); // PT-2 = {t1, t2, t5}

        let quality = mgr.with_session(id, |s| s.quality()).unwrap();
        assert!((quality.aggregate - (-2.55)).abs() < 0.005);
        assert_eq!(quality.g.len(), 4);

        let advice = mgr.with_session(id, |s| s.recommend_probe()).unwrap();
        let rec = advice.recommendation.expect("udb1 is uncertain");
        assert!(rec.expected_gain > 0.0);

        mgr.drop_session(id).unwrap();
        assert_eq!(mgr.sessions_live(), 0);
        assert!(mgr.session(id).is_err());
        assert!(mgr.drop_session(id).is_err());
    }

    #[test]
    fn registering_a_larger_k_replans_the_shared_run() {
        let mgr = SessionManager::new(2);
        let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        let r1 = mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
        assert_eq!(r1.k_max, 2);
        let r2 = mgr.with_session(id, |s| s.register_query(&register_req(id, 4))).unwrap();
        assert_eq!((r2.index, r2.k_max), (1, 4));
        let quality = mgr.with_session(id, |s| s.quality()).unwrap();
        assert_eq!(quality.qualities.len(), 2);
    }

    #[test]
    fn delta_and_rebuild_probe_paths_agree() {
        let mgr = SessionManager::new(1);
        let mk = || {
            let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
            mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
            id
        };
        let (a, b) = (mk(), mk());
        let mutation = XTupleMutation::CollapseToAlternative { keep_pos: 2 };
        let probe =
            |id, mode| ApplyProbe { session: id, x_tuple: 2, mutation: mutation.clone(), mode };
        let delta =
            mgr.with_session(a, |s| s.apply_probe(&probe(a, EvalMode::Delta))).unwrap().update;
        let rebuild =
            mgr.with_session(b, |s| s.apply_probe(&probe(b, EvalMode::Rebuild))).unwrap().update;
        assert!((delta.aggregate - rebuild.aggregate).abs() < 1e-9);
        assert!((delta.aggregate - (-1.85)).abs() < 0.005); // udb1 → udb2
        assert!(delta.stats.rows_total() > 0, "delta path patched rows");
        assert_eq!(rebuild.stats, DeltaStats::default(), "rebuild path patches nothing");
        // Recommendations after the probe see the shrunk x-tuple set.
        let advice = mgr.with_session(a, |s| s.recommend_probe()).unwrap();
        assert!(advice.recommendation.is_some());
    }

    #[test]
    fn invalid_session_parameters_are_rejected() {
        let mgr = SessionManager::new(4);
        assert!(mgr
            .create(&CreateSession {
                dataset: DatasetSpec::Udb1,
                probe_cost: 0,
                probe_success: 0.5,
                session: None
            })
            .is_err());
        assert!(mgr
            .create(&CreateSession {
                dataset: DatasetSpec::Udb1,
                probe_cost: 1,
                probe_success: 1.5,
                session: None
            })
            .is_err());
        assert_eq!(mgr.sessions_live(), 0);
    }

    #[test]
    fn failed_registration_leaves_the_session_usable() {
        let mgr = SessionManager::new(2);
        let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
        // k = 0 is rejected by the batch planner; the session keeps serving
        // its previous query set.
        let bad = RegisterQuery { session: id, query: TopKQuery::UKRanks { k: 0 }, weight: 1.0 };
        assert!(mgr.with_session(id, |s| s.register_query(&bad)).is_err());
        let quality = mgr.with_session(id, |s| s.quality()).unwrap();
        assert_eq!(quality.qualities.len(), 1);
    }

    #[test]
    fn store_backed_sessions_survive_a_reopen() {
        let dir = std::env::temp_dir().join("pdb-server-session-store-test");
        std::fs::remove_dir_all(&dir).ok();
        let open = || Store::open(&dir, true, &build_dataset).unwrap();

        let (store, recovery) = open();
        let mgr = SessionManager::with_store(2, Arc::new(store), recovery, 0);
        let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        mgr.register_query(&register_req(id, 2)).unwrap();
        let probe = ApplyProbe {
            session: id,
            x_tuple: 2,
            mutation: XTupleMutation::CollapseToAlternative { keep_pos: 2 },
            mode: EvalMode::Delta,
        };
        mgr.apply_probe(&probe).unwrap();
        let before = mgr.with_session(id, |s| s.quality()).unwrap();
        let answers_before = mgr.with_session(id, |s| s.evaluate()).unwrap();
        drop(mgr);

        // Reopen the directory: the session rehydrates by WAL replay.
        let (store, recovery) = open();
        assert_eq!(recovery.records, 3);
        assert_eq!(recovery.sessions.len(), 1);
        let mgr = SessionManager::with_store(2, Arc::new(store), recovery, 0);
        assert_eq!(mgr.sessions_live(), 1);
        let after = mgr.with_session(id, |s| s.quality()).unwrap();
        assert!((after.aggregate - before.aggregate).abs() < 1e-12);
        assert_eq!(mgr.with_session(id, |s| s.evaluate()).unwrap(), answers_before);
        let stats = mgr.session_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!((stats[0].session, stats[0].queries, stats[0].probes), (id, 1, 1));

        // New ids never collide with recovered ones.
        let second = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        assert!(second > id);

        // persist + compact: the log shrinks to the two checkpoints.
        let persisted = mgr.persist(id).unwrap();
        assert!(persisted.snapshot.ends_with(".pdbs"));
        assert_eq!(persisted.probes, 1);
        let compaction = mgr.compact().unwrap();
        assert_eq!(compaction.records_after, 2, "one checkpoint per live session");
        drop(mgr);

        // Recovery after compaction loads the checkpoint snapshots.
        let (_, recovery) = open();
        assert_eq!(recovery.sessions.len(), 2);
        let recovered = &recovery.sessions[0];
        assert_eq!(recovered.probes, 1);
        assert_eq!(recovered.probes_replayed, 0, "checkpoint absorbed the probe");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_faulted_sessions_fail_stop_until_persisted() {
        let dir = std::env::temp_dir().join("pdb-server-session-fault-test");
        std::fs::remove_dir_all(&dir).ok();
        let (store, recovery) = Store::open(&dir, true, &build_dataset).unwrap();
        let mgr = SessionManager::with_store(1, Arc::new(store), recovery, 0);
        let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        mgr.register_query(&register_req(id, 2)).unwrap();

        // Simulate an append failure after an in-memory mutation.
        mgr.with_session(id, |s| {
            s.set_journal_fault("disk full");
            Ok(())
        })
        .unwrap();
        let err = mgr.with_session(id, |s| s.evaluate()).unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        assert!(mgr.register_query(&register_req(id, 3)).is_err());

        // persist re-checkpoints the live state: log and memory agree
        // again, the session serves.
        mgr.persist(id).unwrap();
        mgr.with_session(id, |s| s.evaluate()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_without_a_store_is_a_clean_error() {
        let mgr = SessionManager::new(1);
        let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        let err = mgr.persist(id).unwrap_err();
        assert!(err.to_string().contains("--store-dir"), "{err}");
        assert!(mgr.compact().is_err());
        assert_eq!(mgr.maybe_compact().unwrap(), None);
    }

    #[test]
    fn restore_opens_a_session_over_a_snapshot_file() {
        let dir = std::env::temp_dir().join("pdb-server-session-restore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("udb1.pdbs");
        let db = build_dataset(&DatasetSpec::Udb1).unwrap();
        pdb_store::Snapshot::write(&db, &snapshot).unwrap();

        let mgr = SessionManager::new(1);
        let req = RestoreSession {
            snapshot: snapshot.display().to_string(),
            probe_cost: 1,
            probe_success: 0.8,
            session: None,
        };
        let created = mgr.restore(&req).unwrap();
        assert_eq!((created.tuples, created.x_tuples), (7, 4));
        let reg = mgr.register_query(&register_req(created.session, 2)).unwrap();
        assert_eq!(reg.k_max, 2);

        let missing = RestoreSession {
            snapshot: dir.join("nope.pdbs").display().to_string(),
            probe_cost: 1,
            probe_success: 0.8,
            session: None,
        };
        assert!(mgr.restore(&missing).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_spread_sessions() {
        let mgr = SessionManager::new(4);
        for _ in 0..32 {
            mgr.create(&create_req(DatasetSpec::Udb1)).unwrap();
        }
        let occupied = mgr.shards.iter().filter(|s| !s.read().unwrap().is_empty()).count();
        assert!(occupied >= 2, "32 sessions landed on {occupied} of 4 shards");
        assert_eq!(mgr.sessions_created(), 32);
    }
}
