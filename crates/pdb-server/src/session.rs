//! Persistent evaluation sessions and the sharded store that holds them.
//!
//! A [`Session`] pins one database together with a live
//! [`BatchQuality`] evaluation: the paper's adaptive-cleaning loop is
//! stateful (each probe outcome must be folded into the evaluation it was
//! planned from), so the server keeps the shared PSR run alive across
//! requests instead of rebuilding the world per call.  A probe is then one
//! O(k_max)-per-affected-row delta pass shared by every registered query —
//! never a full PSR rebuild (unless the naive
//! [`EvalMode::Rebuild`] baseline is explicitly requested).
//!
//! The [`SessionManager`] shards its `session-id → session` map across `N`
//! independent [`RwLock`]s, keyed by a hash of the session id: concurrent
//! requests touching sessions on different shards never contend, and
//! because each session is boxed behind its own [`Mutex`] (an `Arc` cloned
//! out of the shard under the read lock), one slow evaluation blocks only
//! its own session — the shard map, and every other session on the same
//! shard, stay available.

use crate::protocol::{
    Answers, ApplyProbe, CreateSession, EvalMode, ProbeAdvice, ProbeApplied, ProbeRecommendation,
    QualityReport, QueryRegistered, RegisterQuery, SessionCreated, SessionRef,
};
use pdb_clean::{best_single_probe, CleaningContext, CleaningSetup};
use pdb_core::{DbError, RankedDatabase, Result as DbResult};
use pdb_engine::delta::{DeltaStats, XTupleMutation};
use pdb_quality::{BatchCollapseUpdate, BatchQuality, WeightedQuery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One live session: a database, its cleaning parameters and (once a query
/// is registered) the shared batch evaluation serving every registered
/// query from one PSR run.
#[derive(Debug)]
pub struct Session {
    specs: Vec<WeightedQuery>,
    state: State,
    probe_cost: u64,
    probe_success: f64,
}

/// The evaluation state: until the first query is registered there is
/// nothing to evaluate, so the session only holds the database.  The live
/// evaluation is boxed: it dwarfs the idle variant, and sessions move
/// (into the shard map, out of `register_query`) while in either state.
#[derive(Debug)]
enum State {
    /// No registered queries yet.
    Idle(RankedDatabase),
    /// The live shared evaluation (owns the database).
    Live(Box<BatchQuality<'static>>),
}

impl Session {
    fn new(db: RankedDatabase, probe_cost: u64, probe_success: f64) -> DbResult<Self> {
        if probe_cost == 0 {
            return Err(DbError::invalid_parameter("probe_cost must be at least 1"));
        }
        if !(0.0..=1.0).contains(&probe_success) || !probe_success.is_finite() {
            return Err(DbError::InvalidProbability {
                prob: probe_success,
                context: "session probe success probability".to_string(),
            });
        }
        Ok(Self { specs: Vec::new(), state: State::Idle(db), probe_cost, probe_success })
    }

    /// The session's current database version.
    pub fn database(&self) -> &RankedDatabase {
        match &self.state {
            State::Idle(db) => db,
            State::Live(batch) => batch.database(),
        }
    }

    fn live(&self) -> DbResult<&BatchQuality<'static>> {
        match &self.state {
            State::Live(batch) => Ok(batch),
            State::Idle(_) => Err(DbError::invalid_parameter(
                "session has no registered queries yet; send register_query first",
            )),
        }
    }

    fn live_mut(&mut self) -> DbResult<&mut BatchQuality<'static>> {
        match &mut self.state {
            State::Live(batch) => Ok(batch),
            State::Idle(_) => Err(DbError::invalid_parameter(
                "session has no registered queries yet; send register_query first",
            )),
        }
    }

    /// Register one weighted query: the query set is re-planned and the
    /// shared PSR run re-executed at the (possibly new) `k_max`.
    /// Registration is the expensive, rare operation; probes stay on the
    /// delta path.
    pub fn register_query(&mut self, req: &RegisterQuery) -> DbResult<QueryRegistered> {
        let mut specs = self.specs.clone();
        specs.push(WeightedQuery::weighted(req.query, req.weight));
        let db = self.database().clone();
        let batch = BatchQuality::from_owned(db, specs.clone())?;
        let registered = QueryRegistered {
            session: req.session,
            index: specs.len() - 1,
            k_max: batch.evaluation().k_max(),
        };
        self.specs = specs;
        self.state = State::Live(Box::new(batch));
        Ok(registered)
    }

    /// Answer every registered query from the shared matrix.
    pub fn evaluate(&self) -> DbResult<Answers> {
        Ok(Answers { answers: self.live()?.answers()? })
    }

    /// Per-query and aggregate quality plus the aggregate decomposition.
    pub fn quality(&self) -> DbResult<QualityReport> {
        let batch = self.live()?;
        Ok(QualityReport {
            qualities: batch.quality_vector(),
            weights: batch.weights().to_vec(),
            aggregate: batch.aggregate_quality(),
            g: batch.aggregate_breakdown(),
        })
    }

    /// The cleaning setup of the current database version (uniform probe
    /// cost / success, re-derived so it always matches the x-tuple count —
    /// null collapses shrink the database).
    fn cleaning_setup(&self) -> DbResult<CleaningSetup> {
        CleaningSetup::uniform(self.database().num_x_tuples(), self.probe_cost, self.probe_success)
    }

    /// The single probe maximizing the expected aggregate improvement.
    pub fn recommend_probe(&self) -> DbResult<ProbeAdvice> {
        let batch = self.live()?;
        let ctx = CleaningContext::from_batch(batch);
        let setup = self.cleaning_setup()?;
        let recommendation = best_single_probe(&ctx, &setup)
            .map(|(x_tuple, expected_gain)| ProbeRecommendation { x_tuple, expected_gain });
        Ok(ProbeAdvice { recommendation })
    }

    /// Fold one observed probe outcome into the session.
    pub fn apply_probe(&mut self, req: &ApplyProbe) -> DbResult<ProbeApplied> {
        let update = match req.mode {
            EvalMode::Delta => {
                self.live_mut()?.apply_collapse_in_place(req.x_tuple, &req.mutation)?
            }
            EvalMode::Rebuild => self.apply_probe_rebuild(req.x_tuple, &req.mutation)?,
        };
        Ok(ProbeApplied { session: req.session, mode: req.mode, update })
    }

    /// The naive baseline: mutate the database and re-run the full
    /// PSR + TP pipeline from scratch.  Equivalent to the delta path up to
    /// floating-point round-off; `stats` is all zeros because no row was
    /// patched incrementally.
    fn apply_probe_rebuild(
        &mut self,
        l: usize,
        mutation: &XTupleMutation,
    ) -> DbResult<BatchCollapseUpdate> {
        let before = self.live()?.aggregate_quality();
        let mut db = self.database().clone();
        match mutation {
            XTupleMutation::CollapseToAlternative { keep_pos } => {
                db.collapse_x_tuple_in_place(l, *keep_pos)?
            }
            XTupleMutation::CollapseToNull => db.collapse_x_tuple_to_null_in_place(l)?,
            XTupleMutation::Reweight { probs } => db.reweight_x_tuple_in_place(l, probs)?,
        }
        let batch = BatchQuality::from_owned(db, self.specs.clone())?;
        let update = BatchCollapseUpdate {
            qualities: batch.quality_vector(),
            aggregate: batch.aggregate_quality(),
            aggregate_delta: batch.aggregate_quality() - before,
            g: batch.aggregate_breakdown(),
            stats: DeltaStats::default(),
        };
        self.state = State::Live(Box::new(batch));
        Ok(update)
    }
}

/// Counters a [`SessionManager`] maintains for the `stats` verb.
#[derive(Debug, Default)]
struct Counters {
    live: AtomicU64,
    created: AtomicU64,
    probes: AtomicU64,
}

/// The sharded session store.
///
/// `shards[h(id)]` holds the sessions whose id hashes to shard `h(id)`;
/// each shard is an independent `RwLock<HashMap<..>>`, so lookups on
/// different shards proceed fully in parallel and a lookup only ever takes
/// the *read* side.  Sessions are handed out as `Arc<Mutex<Session>>`
/// clones: the shard lock is released before the session lock is taken, so
/// a long-running evaluation never blocks the store.
#[derive(Debug)]
pub struct SessionManager {
    shards: Vec<RwLock<HashMap<u64, Arc<Mutex<Session>>>>>,
    next_id: AtomicU64,
    counters: Counters,
}

impl SessionManager {
    /// A store with the given number of shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
        }
    }

    /// Number of shards the store was built with.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sessions currently live.
    pub fn sessions_live(&self) -> u64 {
        self.counters.live.load(Ordering::Relaxed)
    }

    /// Sessions created since the store was built.
    pub fn sessions_created(&self) -> u64 {
        self.counters.created.load(Ordering::Relaxed)
    }

    /// Probes applied across all sessions.
    pub fn probes_applied(&self) -> u64 {
        self.counters.probes.load(Ordering::Relaxed)
    }

    /// SplitMix64: id → shard index.  Session ids are sequential, so a
    /// plain modulo would put consecutive sessions on consecutive shards —
    /// fine — but hashing keeps the distribution independent of how ids
    /// are allocated.
    fn shard_of(&self, id: u64) -> usize {
        let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// Create a session over the requested dataset.
    pub fn create(&self, req: &CreateSession) -> DbResult<SessionCreated> {
        let db = req.dataset.build()?;
        let info = SessionCreated { session: 0, tuples: db.len(), x_tuples: db.num_x_tuples() };
        let session = Session::new(db, req.probe_cost, req.probe_success)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(id);
        // Count before inserting: ids are predictable, so a racing
        // drop_session of this id must never decrement `live` below the
        // increment that funded it (underflow to u64::MAX).
        self.counters.live.fetch_add(1, Ordering::Relaxed);
        self.counters.created.fetch_add(1, Ordering::Relaxed);
        self.shards[shard]
            .write()
            .expect("shard lock poisoned")
            .insert(id, Arc::new(Mutex::new(session)));
        Ok(SessionCreated { session: id, ..info })
    }

    /// Look up a session (the returned handle outlives the shard lock).
    pub fn session(&self, id: u64) -> DbResult<Arc<Mutex<Session>>> {
        let shard = self.shard_of(id);
        self.shards[shard]
            .read()
            .expect("shard lock poisoned")
            .get(&id)
            .cloned()
            .ok_or_else(|| DbError::invalid_parameter(format!("unknown session {id}")))
    }

    /// Drop a session.
    pub fn drop_session(&self, id: u64) -> DbResult<SessionRef> {
        let shard = self.shard_of(id);
        let removed = self.shards[shard].write().expect("shard lock poisoned").remove(&id);
        match removed {
            Some(_) => {
                self.counters.live.fetch_sub(1, Ordering::Relaxed);
                Ok(SessionRef { session: id })
            }
            None => Err(DbError::invalid_parameter(format!("unknown session {id}"))),
        }
    }

    /// Run `op` on a session under its own lock.
    pub fn with_session<T>(
        &self,
        id: u64,
        op: impl FnOnce(&mut Session) -> DbResult<T>,
    ) -> DbResult<T> {
        let handle = self.session(id)?;
        let mut session = handle.lock().expect("session lock poisoned");
        op(&mut session)
    }

    /// Record one applied probe (for `stats`).
    pub fn record_probe(&self) {
        self.counters.probes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::DatasetSpec;
    use pdb_engine::queries::TopKQuery;

    fn create_req(dataset: DatasetSpec) -> CreateSession {
        CreateSession { dataset, probe_cost: 1, probe_success: 0.8 }
    }

    fn register_req(session: u64, k: usize) -> RegisterQuery {
        RegisterQuery { session, query: TopKQuery::PTk { k, threshold: 0.4 }, weight: 1.0 }
    }

    #[test]
    fn session_lifecycle_on_udb1() {
        let mgr = SessionManager::new(4);
        let created = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap();
        assert_eq!(created.tuples, 7);
        assert_eq!(created.x_tuples, 4);
        assert_eq!(mgr.sessions_live(), 1);

        // No queries yet: evaluation verbs fail, registration fixes that.
        let id = created.session;
        assert!(mgr.with_session(id, |s| s.evaluate()).is_err());
        let reg = mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
        assert_eq!(reg.index, 0);
        assert_eq!(reg.k_max, 2);

        let answers = mgr.with_session(id, |s| s.evaluate()).unwrap();
        assert_eq!(answers.answers.len(), 1);
        assert_eq!(answers.answers[0].len(), 3); // PT-2 = {t1, t2, t5}

        let quality = mgr.with_session(id, |s| s.quality()).unwrap();
        assert!((quality.aggregate - (-2.55)).abs() < 0.005);
        assert_eq!(quality.g.len(), 4);

        let advice = mgr.with_session(id, |s| s.recommend_probe()).unwrap();
        let rec = advice.recommendation.expect("udb1 is uncertain");
        assert!(rec.expected_gain > 0.0);

        mgr.drop_session(id).unwrap();
        assert_eq!(mgr.sessions_live(), 0);
        assert!(mgr.session(id).is_err());
        assert!(mgr.drop_session(id).is_err());
    }

    #[test]
    fn registering_a_larger_k_replans_the_shared_run() {
        let mgr = SessionManager::new(2);
        let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        let r1 = mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
        assert_eq!(r1.k_max, 2);
        let r2 = mgr.with_session(id, |s| s.register_query(&register_req(id, 4))).unwrap();
        assert_eq!((r2.index, r2.k_max), (1, 4));
        let quality = mgr.with_session(id, |s| s.quality()).unwrap();
        assert_eq!(quality.qualities.len(), 2);
    }

    #[test]
    fn delta_and_rebuild_probe_paths_agree() {
        let mgr = SessionManager::new(1);
        let mk = || {
            let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
            mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
            id
        };
        let (a, b) = (mk(), mk());
        let mutation = XTupleMutation::CollapseToAlternative { keep_pos: 2 };
        let probe =
            |id, mode| ApplyProbe { session: id, x_tuple: 2, mutation: mutation.clone(), mode };
        let delta =
            mgr.with_session(a, |s| s.apply_probe(&probe(a, EvalMode::Delta))).unwrap().update;
        let rebuild =
            mgr.with_session(b, |s| s.apply_probe(&probe(b, EvalMode::Rebuild))).unwrap().update;
        assert!((delta.aggregate - rebuild.aggregate).abs() < 1e-9);
        assert!((delta.aggregate - (-1.85)).abs() < 0.005); // udb1 → udb2
        assert!(delta.stats.rows_total() > 0, "delta path patched rows");
        assert_eq!(rebuild.stats, DeltaStats::default(), "rebuild path patches nothing");
        // Recommendations after the probe see the shrunk x-tuple set.
        let advice = mgr.with_session(a, |s| s.recommend_probe()).unwrap();
        assert!(advice.recommendation.is_some());
    }

    #[test]
    fn invalid_session_parameters_are_rejected() {
        let mgr = SessionManager::new(4);
        assert!(mgr
            .create(&CreateSession {
                dataset: DatasetSpec::Udb1,
                probe_cost: 0,
                probe_success: 0.5
            })
            .is_err());
        assert!(mgr
            .create(&CreateSession {
                dataset: DatasetSpec::Udb1,
                probe_cost: 1,
                probe_success: 1.5
            })
            .is_err());
        assert_eq!(mgr.sessions_live(), 0);
    }

    #[test]
    fn failed_registration_leaves_the_session_usable() {
        let mgr = SessionManager::new(2);
        let id = mgr.create(&create_req(DatasetSpec::Udb1)).unwrap().session;
        mgr.with_session(id, |s| s.register_query(&register_req(id, 2))).unwrap();
        // k = 0 is rejected by the batch planner; the session keeps serving
        // its previous query set.
        let bad = RegisterQuery { session: id, query: TopKQuery::UKRanks { k: 0 }, weight: 1.0 };
        assert!(mgr.with_session(id, |s| s.register_query(&bad)).is_err());
        let quality = mgr.with_session(id, |s| s.quality()).unwrap();
        assert_eq!(quality.qualities.len(), 1);
    }

    #[test]
    fn shards_spread_sessions() {
        let mgr = SessionManager::new(4);
        for _ in 0..32 {
            mgr.create(&create_req(DatasetSpec::Udb1)).unwrap();
        }
        let occupied = mgr.shards.iter().filter(|s| !s.read().unwrap().is_empty()).count();
        assert!(occupied >= 2, "32 sessions landed on {occupied} of 4 shards");
        assert_eq!(mgr.sessions_created(), 32);
    }
}
