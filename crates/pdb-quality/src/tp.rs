//! The TP quality algorithm (Theorem 1 of the paper).
//!
//! Theorem 1 rewrites the PWS-quality of a top-k query as a weighted sum of
//! the tuples' top-k probabilities:
//!
//! ```text
//! S(D, Q) = Σ_i ωᵢ · pᵢ
//! ωᵢ = log₂ eᵢ + (1/eᵢ)·( Y(1 − E≥ᵢ) − Y(1 − E>ᵢ) )
//! ```
//!
//! where `E≥ᵢ` / `E>ᵢ` are the existential masses of the same x-tuple's
//! alternatives ranked at-or-above / strictly-above tuple `i`, and
//! `Y(x) = x·log₂ x`.  The top-k probabilities come from PSR, the weights
//! from a single incremental pass over the sorted tuples, so the whole
//! computation is O(k·n) — and the expensive part (PSR) is exactly what
//! query evaluation needs anyway, enabling the computation sharing of
//! Section IV-C (see [`crate::shared`]).
//!
//! Implicit null alternatives need no special handling: a null tuple's
//! weight is identically zero (its at-or-above mass is the full x-tuple
//! mass 1, so both `Y` terms cancel against `log₂ e`), which the PW/TP
//! cross-check tests confirm empirically.

use crate::pw_results::plogp;
use pdb_core::{RankedDatabase, Result};
use pdb_engine::psr::{rank_probabilities, RankAccess};
use serde::{Deserialize, Serialize};

/// Per-x-tuple decomposition of the quality score, used by the cleaning
/// algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityBreakdown {
    /// The PWS-quality score `S(D, Q) = Σ g(l, D)`.
    pub quality: f64,
    /// `g(l, D) = Σ_{tᵢ ∈ τ_l} ωᵢ·pᵢ` for every x-tuple `l`: the x-tuple's
    /// contribution to the quality score (Section V-B of the paper).  Always
    /// ≤ 0; cleaning x-tuple `l` removes `−g(l, D)` of ambiguity in
    /// expectation.
    pub x_tuple_contribution: Vec<f64>,
}

impl QualityBreakdown {
    /// `g(l, D)` for one x-tuple.
    pub fn g(&self, l: usize) -> f64 {
        self.x_tuple_contribution[l]
    }

    /// Number of x-tuples.
    pub fn num_x_tuples(&self) -> usize {
        self.x_tuple_contribution.len()
    }
}

/// The weight ωᵢ of one tuple (Equation 6 / 8 of the paper).
///
/// `pos` is the tuple's rank position.  Tuples with zero existential
/// probability get weight 0 (they can never appear in an answer, so their
/// product ωᵢ·pᵢ is zero regardless).
pub fn tuple_weight(db: &RankedDatabase, pos: usize) -> f64 {
    let e = db.tuple(pos).prob;
    if e <= 0.0 {
        return 0.0;
    }
    let at_or_above = db.higher_or_equal_mass_within(pos);
    let above = db.higher_mass_within(pos);
    let y_hi = plogp((1.0 - at_or_above).max(0.0));
    let y_lo = plogp((1.0 - above).max(0.0));
    e.log2() + (y_hi - y_lo) / e
}

/// All tuple weights, indexed by rank position.
pub fn tuple_weights(db: &RankedDatabase) -> Vec<f64> {
    (0..db.len()).map(|pos| tuple_weight(db, pos)).collect()
}

/// Compute the PWS-quality with the TP algorithm, running PSR internally.
pub fn quality_tp(db: &RankedDatabase, k: usize) -> Result<f64> {
    let rp = rank_probabilities(db, k)?;
    Ok(quality_tp_with(db, &rp))
}

/// Compute the PWS-quality from precomputed rank probabilities
/// (computation sharing with query evaluation).
pub fn quality_tp_with<R: RankAccess + ?Sized>(db: &RankedDatabase, rp: &R) -> f64 {
    let mut total = 0.0;
    for pos in 0..db.len() {
        let p = rp.top_k_prob(pos);
        if p > 0.0 {
            total += tuple_weight(db, pos) * p;
        }
    }
    total
}

/// Compute the quality together with its per-x-tuple decomposition
/// `g(l, D)`, the input of the cleaning problem.
pub fn quality_breakdown<R: RankAccess + ?Sized>(db: &RankedDatabase, rp: &R) -> QualityBreakdown {
    let mut per_x = vec![0.0; db.num_x_tuples()];
    for pos in 0..db.len() {
        let p = rp.top_k_prob(pos);
        if p > 0.0 {
            per_x[db.tuple(pos).x_index] += tuple_weight(db, pos) * p;
        }
    }
    let quality = per_x.iter().sum();
    QualityBreakdown { quality, x_tuple_contribution: per_x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::quality_pw;
    use crate::pwr::quality_pwr;

    #[test]
    fn quality_breakdown_round_trips_through_json() {
        let db = udb1();
        let breakdown = quality_breakdown(&db, &rank_probabilities(&db, 2).unwrap());
        let json = serde_json::to_string(&breakdown).unwrap();
        let back: QualityBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(back, breakdown, "via {json}");
    }

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn udb2() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(27.0, 1.0)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn matches_paper_values_on_the_running_example() {
        assert!((quality_tp(&udb1(), 2).unwrap() - (-2.55)).abs() < 0.005);
        assert!((quality_tp(&udb2(), 2).unwrap() - (-1.85)).abs() < 0.005);
    }

    #[test]
    fn agrees_with_pw_and_pwr_on_udb1_for_all_k() {
        let db = udb1();
        for k in 1..=6 {
            let tp = quality_tp(&db, k).unwrap();
            let pw = quality_pw(&db, k).unwrap();
            let pwr = quality_pwr(&db, k).unwrap();
            assert!((tp - pw).abs() < 1e-8, "k={k}: TP {tp} vs PW {pw}");
            assert!((tp - pwr).abs() < 1e-8, "k={k}: TP {tp} vs PWR {pwr}");
        }
    }

    #[test]
    fn agrees_with_pw_on_databases_with_null_mass() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.4), (8.0, 0.2)],
            vec![(7.0, 0.9)],
            vec![(6.0, 1.0)],
        ])
        .unwrap();
        for k in 1..=4 {
            let tp = quality_tp(&db, k).unwrap();
            let pw = quality_pw(&db, k).unwrap();
            assert!((tp - pw).abs() < 1e-8, "k={k}: TP {tp} vs PW {pw}");
        }
    }

    #[test]
    fn agrees_with_pw_on_random_databases() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..25 {
            let m = rng.gen_range(2..7);
            let mut x_tuples = Vec::new();
            for _ in 0..m {
                let alts = rng.gen_range(1..4);
                let mut remaining: f64 = 1.0;
                let mut v = Vec::new();
                for _ in 0..alts {
                    let p = remaining * rng.gen_range(0.2..0.95);
                    remaining -= p;
                    v.push((rng.gen_range(0.0..100.0), p));
                }
                x_tuples.push(v);
            }
            let db = RankedDatabase::from_scored_x_tuples(&x_tuples).unwrap();
            let k = rng.gen_range(1..5);
            let tp = quality_tp(&db, k).unwrap();
            let pw = quality_pw(&db, k).unwrap();
            assert!((tp - pw).abs() < 1e-8, "trial {trial} (k={k}): TP {tp} vs PW {pw}");
        }
    }

    #[test]
    fn certain_database_has_zero_quality_and_zero_weights() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(3.0, 1.0)], vec![(2.0, 1.0)]]).unwrap();
        assert_eq!(quality_tp(&db, 2).unwrap(), 0.0);
        assert!(tuple_weights(&db).iter().all(|&w| w == 0.0));
    }

    #[test]
    fn weights_are_non_positive_for_top_ranked_alternatives() {
        // For the highest-ranked alternative of an x-tuple, E> = 0 so
        // ω = log2(e) + Y(1−e)/e ≤ 0 with equality only at e = 1.
        let db = udb1();
        let w = tuple_weights(&db);
        assert!(w[0] < 0.0); // 32 °C, e = 0.4
        assert!(w.iter().all(|&x| x <= 1e-12));
    }

    #[test]
    fn zero_probability_tuples_have_zero_weight() {
        let db = RankedDatabase::from_scored_x_tuples(&[vec![(5.0, 0.0), (4.0, 1.0)]]).unwrap();
        let w = tuple_weights(&db);
        assert_eq!(w[0], 0.0);
    }

    #[test]
    fn breakdown_sums_to_quality_and_is_non_positive() {
        let db = udb1();
        let rp = rank_probabilities(&db, 2).unwrap();
        let b = quality_breakdown(&db, &rp);
        assert_eq!(b.num_x_tuples(), 4);
        let sum: f64 = (0..4).map(|l| b.g(l)).sum();
        assert!((sum - b.quality).abs() < 1e-12);
        assert!((b.quality - quality_tp(&db, 2).unwrap()).abs() < 1e-12);
        assert!(b.x_tuple_contribution.iter().all(|&g| g <= 1e-12));
        // The certain sensor S4 still contributes ambiguity because its
        // membership in the answer is uncertain; the certain x-tuple of a
        // certain database would contribute zero (covered above).
    }
}
