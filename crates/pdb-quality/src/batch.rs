//! Batched quality evaluation across a registered query set.
//!
//! [`BatchQuality`] layers per-query PWS-quality on top of the engine's
//! [`BatchEvaluation`]: every registered query `(kᵢ, semantics, weight)`
//! gets its quality score from the one shared `k_max` PSR run, and the
//! batch exposes the **aggregate** quantities a multi-tenant cleaner
//! optimizes —
//!
//! ```text
//! S_agg(D)   = Σ_q w_q · S(D, Q_q)
//! g_agg(l,D) = Σ_q w_q · g_q(l, D)
//! ```
//!
//! Theorem 1 makes the per-query scores nearly free: the tuple weights ωᵢ
//! depend only on the database (never on `k`), so one O(n) weight pass
//! plus one dot product with each query's top-k probability vector yields
//! the whole quality vector.  And because the aggregate is a fixed
//! positive combination of per-query scores, Theorem 2 applies to it
//! verbatim — the cleaning planners in `pdb-clean` run unchanged on a
//! `CleaningContext` built from `g_agg` (see `CleaningContext::from_batch`
//! there), so one plan maximizes the expected improvement summed over
//! every registered query.
//!
//! Probe outcomes flow through
//! [`BatchQuality::apply_collapse_in_place`]: one delta pass on the
//! shared matrix re-serves every query, and the returned
//! [`BatchCollapseUpdate`] carries the refreshed quality vector and
//! aggregate decomposition for re-planning.

use crate::tp::tuple_weights;
use pdb_core::{DbError, RankedDatabase, Result};
use pdb_engine::batch::BatchEvaluation;
use pdb_engine::delta::{DeltaStats, XTupleMutation};
use pdb_engine::psr::RankAccess;
use pdb_engine::queries::{QueryAnswer, TopKQuery};
use serde::{Deserialize, Serialize};

/// One registered query together with its serving weight (the importance
/// the aggregate quality assigns to it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedQuery {
    /// The query (semantics + `k` + parameters).
    pub query: TopKQuery,
    /// Non-negative finite weight `w_q` in the aggregate `Σ_q w_q·S_q`.
    pub weight: f64,
}

impl WeightedQuery {
    /// A query with the default weight 1.
    pub fn new(query: TopKQuery) -> Self {
        Self { query, weight: 1.0 }
    }

    /// A query with an explicit weight.
    pub fn weighted(query: TopKQuery, weight: f64) -> Self {
        Self { query, weight }
    }
}

/// Result of applying one probe outcome to a [`BatchQuality`] in place:
/// everything an aggregate re-planner needs for the next probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchCollapseUpdate {
    /// `S(D′, Q_q)` for every registered query, in registration order.
    pub qualities: Vec<f64>,
    /// The new aggregate quality `Σ_q w_q·S(D′, Q_q)`.
    pub aggregate: f64,
    /// Change to the aggregate quality realised by this mutation.
    pub aggregate_delta: f64,
    /// The aggregate per-x-tuple decomposition `g_agg(l, D′)`, indexed by
    /// the mutated database's x-indices.
    pub g: Vec<f64>,
    /// How the (single, shared) delta pass produced the updated rows.
    pub stats: DeltaStats,
}

/// A set of weighted queries served — answers *and* quality scores — from
/// one shared PSR run.
#[derive(Debug, Clone)]
pub struct BatchQuality<'a> {
    eval: BatchEvaluation<'a>,
    weights: Vec<f64>,
    /// Cached Theorem-1 tuple weights ωᵢ of the current database version.
    /// They depend only on the database (never on `k`), so one O(n) pass
    /// serves every registered query's quality; recomputed per mutation.
    tuple_w: Vec<f64>,
    /// Cached aggregate quality `Σ_q w_q·S_q` of the current database
    /// version, maintained at construction and across mutations so a
    /// serving loop never rescans the matrix for the pre-probe score.
    aggregate: f64,
}

/// `Σ_q w_q·S_q` from a quality vector.
fn weighted_aggregate(qualities: &[f64], weights: &[f64]) -> f64 {
    qualities.iter().zip(weights).map(|(s, w)| s * w).sum()
}

fn validate_weights(weights: &[f64]) -> Result<()> {
    for (q, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(DbError::invalid_parameter(format!(
                "query {q} has invalid weight {w}; weights must be finite and non-negative"
            )));
        }
    }
    Ok(())
}

fn split_specs(specs: Vec<WeightedQuery>) -> (Vec<TopKQuery>, Vec<f64>) {
    specs.into_iter().map(|s| (s.query, s.weight)).unzip()
}

impl<'a> BatchQuality<'a> {
    /// Plan the query set and run PSR once at `k_max`, borrowing the
    /// database.
    pub fn new(db: &'a RankedDatabase, specs: Vec<WeightedQuery>) -> Result<Self> {
        let (queries, weights) = split_specs(specs);
        validate_weights(&weights)?;
        let eval = BatchEvaluation::new(db, queries)?;
        let tuple_w = tuple_weights(eval.database());
        let mut batch = Self { eval, weights, tuple_w, aggregate: 0.0 };
        batch.aggregate = weighted_aggregate(&batch.quality_vector(), &batch.weights);
        Ok(batch)
    }

    /// [`new`](Self::new) taking ownership of the database (the long-lived
    /// serving form).
    pub fn from_owned(
        db: RankedDatabase,
        specs: Vec<WeightedQuery>,
    ) -> Result<BatchQuality<'static>> {
        let (queries, weights) = split_specs(specs);
        validate_weights(&weights)?;
        let eval = BatchEvaluation::from_owned(db, queries)?;
        let tuple_w = tuple_weights(eval.database());
        let mut batch = BatchQuality { eval, weights, tuple_w, aggregate: 0.0 };
        batch.aggregate = weighted_aggregate(&batch.quality_vector(), &batch.weights);
        Ok(batch)
    }

    /// The underlying engine-level batch evaluation.
    pub fn evaluation(&self) -> &BatchEvaluation<'a> {
        &self.eval
    }

    /// The database under evaluation.
    pub fn database(&self) -> &RankedDatabase {
        self.eval.database()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.eval.num_queries()
    }

    /// The per-query weights, in registration order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Answer every registered query from the shared matrix.
    pub fn answers(&self) -> Result<Vec<QueryAnswer>> {
        self.eval.answers()
    }

    /// `Σ_q w_q · pᵢ^{(q)}`: each tuple's top-k probability combined
    /// across the registered queries.  This is the only per-tuple quantity
    /// the aggregate quality and its decomposition need.
    pub fn combined_top_k_probs(&self) -> Vec<f64> {
        self.per_query_parts().1
    }

    /// `S(D, Q_q)` for every registered query: one O(n) tuple-weight pass
    /// (ωᵢ is independent of `k`) and one dot product per query.
    pub fn quality_vector(&self) -> Vec<f64> {
        self.per_query_parts().0
    }

    /// The aggregate quality `Σ_q w_q · S(D, Q_q)` of the current database
    /// version (cached; maintained across mutations).
    pub fn aggregate_quality(&self) -> f64 {
        self.aggregate
    }

    /// One pass over the per-query top-k vectors producing the quality
    /// vector *and* the combined probabilities together: the single
    /// weighted-scan implementation behind `quality_vector`,
    /// `combined_top_k_probs`, `aggregate_parts` and the post-mutation
    /// refresh.
    fn per_query_parts(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.database().len();
        let w = &self.tuple_w;
        let mut combined = vec![0.0; n];
        let mut qualities = Vec::with_capacity(self.num_queries());
        for q in 0..self.num_queries() {
            let wq = self.weights[q];
            let ranks = self.eval.ranks(q);
            let probs = ranks.top_k_probs();
            let mut quality = 0.0;
            for ((wi, &p), c) in w.iter().zip(probs).zip(combined.iter_mut()) {
                quality += wi * p;
                // pdb-analyze: allow(float-eq): sparsity gate against an exact literal weight; a near-zero weight must still contribute
                if wq != 0.0 {
                    *c += wq * p;
                }
            }
            qualities.push(quality);
        }
        (qualities, combined)
    }

    /// Fold a combined probability vector into the per-x-tuple aggregate
    /// decomposition `g_agg`.
    fn g_from_combined(&self, combined: &[f64]) -> Vec<f64> {
        let db = self.database();
        let mut g = vec![0.0; db.num_x_tuples()];
        for pos in 0..db.len() {
            let term = self.tuple_w[pos] * combined[pos];
            // pdb-analyze: allow(float-eq): sparsity gate — skips exactly-zero terms so untouched x-tuples stay untouched; near-zero terms must accumulate
            if term != 0.0 {
                g[db.tuple(pos).x_index] += term;
            }
        }
        g
    }

    /// The aggregate per-x-tuple decomposition `g_agg(l, D)`: cleaning
    /// x-tuple `l` removes `−g_agg(l, D)` of weighted ambiguity across the
    /// whole query set in expectation.  Sums to
    /// [`aggregate_quality`](Self::aggregate_quality).
    pub fn aggregate_breakdown(&self) -> Vec<f64> {
        self.aggregate_parts().0
    }

    /// [`aggregate_breakdown`](Self::aggregate_breakdown) and
    /// [`combined_top_k_probs`](Self::combined_top_k_probs) from one O(n·Q)
    /// accumulation pass — the form `CleaningContext::from_batch` consumes,
    /// since an aggregate re-planner needs both per probe.
    pub fn aggregate_parts(&self) -> (Vec<f64>, Vec<f64>) {
        let (_, combined) = self.per_query_parts();
        (self.g_from_combined(&combined), combined)
    }

    /// Refresh the caches after a successful delta pass and assemble the
    /// re-planning update (`before` is the pre-mutation aggregate).  The
    /// single code path both collapse forms share.
    fn finish_update(&mut self, before: f64, stats: DeltaStats) -> BatchCollapseUpdate {
        self.tuple_w = tuple_weights(self.eval.database());
        let (qualities, combined) = self.per_query_parts();
        let aggregate = weighted_aggregate(&qualities, &self.weights);
        self.aggregate = aggregate;
        BatchCollapseUpdate {
            aggregate,
            aggregate_delta: aggregate - before,
            qualities,
            g: self.g_from_combined(&combined),
            stats,
        }
    }

    /// Apply a single-x-tuple mutation (one observed probe outcome) to the
    /// batch: one shared delta pass patches the master matrix, every
    /// registered query is re-served from it, and the refreshed quality
    /// vector / aggregate decomposition are returned for re-planning.  On
    /// `Err` nothing is modified.
    pub fn apply_collapse_in_place(
        &mut self,
        l: usize,
        mutation: &XTupleMutation,
    ) -> Result<BatchCollapseUpdate> {
        let before = self.aggregate;
        let stats = self.eval.apply_collapse_in_place(l, mutation)?;
        Ok(self.finish_update(before, stats))
    }

    /// Replay a journalled sequence of probe outcomes: every mutation is
    /// one delta pass on the shared master matrix, and the quality caches
    /// are refreshed **once** at the end instead of once per probe — the
    /// intermediate quality vectors a live session serves to clients are
    /// pure overhead during crash recovery.
    ///
    /// On `Err` the batch is inconsistent (the evaluation holds the
    /// partially replayed state but the cached qualities do not) and must
    /// be discarded.
    pub fn replay_in_place(
        &mut self,
        probes: impl IntoIterator<Item = (usize, XTupleMutation)>,
    ) -> Result<BatchCollapseUpdate> {
        let before = self.aggregate;
        let stats = self.eval.replay_in_place(probes)?;
        Ok(self.finish_update(before, stats))
    }

    /// [`apply_collapse_in_place`](Self::apply_collapse_in_place) on a
    /// copy: the pre-mutation batch stays usable as an oracle.
    pub fn apply_collapse(
        &self,
        l: usize,
        mutation: &XTupleMutation,
    ) -> Result<(BatchQuality<'static>, BatchCollapseUpdate)> {
        let (eval, stats) = self.eval.apply_collapse(l, mutation)?;
        let mut next = BatchQuality {
            eval,
            weights: self.weights.clone(),
            // Placeholders: finish_update recomputes both caches.
            tuple_w: Vec::new(),
            aggregate: 0.0,
        };
        // The delta is measured against the *pre*-mutation aggregate.
        let update = next.finish_update(self.aggregate, stats);
        Ok((next, update))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tp::quality_tp;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn specs() -> Vec<WeightedQuery> {
        vec![
            WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 }),
            WeightedQuery::weighted(TopKQuery::GlobalTopk { k: 3 }, 2.0),
            WeightedQuery::weighted(TopKQuery::UKRanks { k: 1 }, 0.5),
        ]
    }

    #[test]
    fn quality_vector_matches_independent_tp_runs() {
        let db = udb1();
        let batch = BatchQuality::new(&db, specs()).unwrap();
        let qualities = batch.quality_vector();
        let mut aggregate = 0.0;
        for (q, spec) in specs().iter().enumerate() {
            let independent = quality_tp(&db, spec.query.k()).unwrap();
            assert!(
                (qualities[q] - independent).abs() < 1e-10,
                "query {q}: {} vs {independent}",
                qualities[q]
            );
            aggregate += spec.weight * independent;
        }
        assert!((batch.aggregate_quality() - aggregate).abs() < 1e-10);
    }

    #[test]
    fn aggregate_breakdown_sums_to_aggregate_quality() {
        let db = udb1();
        let batch = BatchQuality::new(&db, specs()).unwrap();
        let g = batch.aggregate_breakdown();
        assert_eq!(g.len(), 4);
        assert!((g.iter().sum::<f64>() - batch.aggregate_quality()).abs() < 1e-10);
        // Ambiguity contributions are non-positive for non-negative weights.
        assert!(g.iter().all(|&v| v <= 1e-12));
    }

    #[test]
    fn zero_weight_queries_do_not_move_the_aggregate() {
        let db = udb1();
        let mut with_zero = specs();
        with_zero.push(WeightedQuery::weighted(TopKQuery::PTk { k: 4, threshold: 0.1 }, 0.0));
        let a = BatchQuality::new(&db, specs()).unwrap().aggregate_quality();
        let b = BatchQuality::new(&db, with_zero).unwrap().aggregate_quality();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let db = udb1();
        let bad = vec![WeightedQuery::weighted(TopKQuery::UKRanks { k: 1 }, -1.0)];
        assert!(BatchQuality::new(&db, bad).is_err());
        let nan = vec![WeightedQuery::weighted(TopKQuery::UKRanks { k: 1 }, f64::NAN)];
        assert!(BatchQuality::new(&db, nan).is_err());
    }

    #[test]
    fn weighted_query_round_trips_through_json() {
        for spec in specs() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WeightedQuery = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "via {json}");
        }
    }

    #[test]
    fn batch_collapse_update_round_trips_through_json() {
        let db = udb1();
        let batch = BatchQuality::from_owned(db, specs()).unwrap();
        let (_, update) = batch
            .apply_collapse(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        let json = serde_json::to_string(&update).unwrap();
        let back: BatchCollapseUpdate = serde_json::from_str(&json).unwrap();
        // The vendored serde_json prints shortest-round-trip floats, so the
        // decoded update is bit-identical, not merely close.
        assert_eq!(back, update, "via {json}");
    }

    #[test]
    fn replay_in_place_matches_sequential_applies() {
        let probes = vec![
            (2usize, XTupleMutation::CollapseToAlternative { keep_pos: 2 }),
            (1usize, XTupleMutation::Reweight { probs: vec![0.9, 0.1] }),
        ];
        let mut sequential = BatchQuality::from_owned(udb1(), specs()).unwrap();
        let before = sequential.aggregate_quality();
        let mut stats = DeltaStats::default();
        for (l, mutation) in &probes {
            stats.accumulate(&sequential.apply_collapse_in_place(*l, mutation).unwrap().stats);
        }

        let mut replayed = BatchQuality::from_owned(udb1(), specs()).unwrap();
        let update = replayed.replay_in_place(probes).unwrap();
        assert_eq!(update.stats, stats, "delta statistics accumulate across the replay");
        assert!((update.aggregate - sequential.aggregate_quality()).abs() < 1e-12);
        assert!((update.aggregate_delta - (update.aggregate - before)).abs() < 1e-12);
        let sequential_qualities = sequential.quality_vector();
        for (q, quality) in update.qualities.iter().enumerate() {
            assert!((quality - sequential_qualities[q]).abs() < 1e-12, "query {q}");
        }
        assert_eq!(replayed.database(), sequential.database());
    }

    #[test]
    fn collapse_refreshes_every_quality() {
        let db = udb1();
        let batch = BatchQuality::from_owned(db, specs()).unwrap();
        let before = batch.aggregate_quality();
        let (next, update) = batch
            .apply_collapse(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        assert!(update.aggregate > before, "cleaning improves the weighted aggregate");
        assert!((update.aggregate_delta - (update.aggregate - before)).abs() < 1e-12);
        assert!((update.g.iter().sum::<f64>() - update.aggregate).abs() < 1e-10);
        assert!(update.stats.rows_total() > 0);
        for (q, spec) in specs().iter().enumerate() {
            let independent = quality_tp(next.database(), spec.query.k()).unwrap();
            assert!(
                (update.qualities[q] - independent).abs() < 1e-8,
                "query {q}: {} vs {independent}",
                update.qualities[q]
            );
        }
        // Pre-mutation batch untouched.
        assert!((batch.aggregate_quality() - before).abs() < 1e-12);
    }
}
