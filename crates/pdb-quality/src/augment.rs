//! Null-tuple materialisation.
//!
//! The paper's data model (Section III-A) conceptually completes every
//! x-tuple whose explicit probability mass is below 1 with a *null* tuple
//! carrying the remaining mass, ranked below every non-null tuple.  The
//! pw-result-based quality algorithms (PW and PWR) need those null tuples
//! to be explicit — a possible world with fewer than `k` real tuples pads
//! its top-k answer with nulls, and which entity's null appears is part of
//! the formal pw-result.  The TP algorithm does not need them (a null
//! tuple's weight ωᵢ is exactly zero), which this module's tests verify
//! indirectly through the PW ≡ TP cross-checks elsewhere in the crate.

use pdb_core::{RankedDatabase, Result, TupleId};

/// Outcome of materialising null tuples.
#[derive(Debug, Clone)]
pub struct AugmentedDatabase {
    /// The database with explicit null tuples appended (every x-tuple has
    /// total mass 1 up to floating point).
    pub db: RankedDatabase,
    /// For every rank position of the augmented database, the x-tuple index
    /// whose null it represents, or `None` for a real tuple.  Real tuples
    /// keep their original rank positions (nulls sort below everything).
    pub null_of: Vec<Option<usize>>,
}

/// Materialise the implicit null tuples of `db`.
///
/// Null tuples are given a score strictly below the minimum real score and
/// are ordered among themselves by x-tuple index, matching the paper's
/// requirement that the ranking function assigns a unique rank to every
/// tuple.  Real tuples keep their rank positions.
pub fn augment_with_nulls(db: &RankedDatabase) -> Result<AugmentedDatabase> {
    let n = db.len();
    let min_score = db.tuples().map(|t| t.score).fold(f64::INFINITY, f64::min);
    // A score gap below every real tuple; the exact value is irrelevant as
    // long as ordering is preserved, ties among nulls break by tuple id.
    let null_score = if min_score.is_finite() { min_score - 1.0 } else { -1.0 };

    let mut entries: Vec<(TupleId, usize, f64, f64)> =
        db.tuples().map(|t| (t.id, t.x_index, t.score, t.prob)).collect();
    let max_id = db.tuples().map(|t| t.id.0).max().unwrap_or(0);

    let mut next_id = max_id + 1;
    let mut has_null = Vec::new();
    for (l, info) in db.x_tuples().enumerate() {
        let null = info.null_prob();
        if null > pdb_core::PROB_EPSILON {
            entries.push((TupleId(next_id), l, null_score, null));
            has_null.push((next_id, l));
            next_id += 1;
        }
    }
    let keys = db.x_tuples().map(|x| x.key.clone()).collect();
    let augmented = RankedDatabase::from_entries(entries, keys)?;

    // Nulls sort after all real tuples (strictly smaller score), in x-tuple
    // order (increasing tuple id).
    let mut null_of = vec![None; augmented.len()];
    for (pos, slot) in null_of.iter_mut().enumerate().skip(n) {
        let t = augmented.tuple(pos);
        debug_assert!(t.id.0 > max_id, "null tuples occupy the tail positions");
        *slot = Some(t.x_index);
    }
    Ok(AugmentedDatabase { db: augmented, null_of })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mass_database_is_unchanged() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(26.0, 1.0)],
        ])
        .unwrap();
        let aug = augment_with_nulls(&db).unwrap();
        assert_eq!(aug.db.len(), db.len());
        assert!(aug.null_of.iter().all(|x| x.is_none()));
    }

    #[test]
    fn nulls_are_appended_below_real_tuples() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.4), (8.0, 0.2)],
            vec![(7.0, 1.0)],
        ])
        .unwrap();
        let aug = augment_with_nulls(&db).unwrap();
        // Two x-tuples are under-full, so two nulls appear.
        assert_eq!(aug.db.len(), db.len() + 2);
        // Real tuples keep their positions and scores.
        for pos in 0..db.len() {
            assert_eq!(aug.db.tuple(pos).score, db.tuple(pos).score);
            assert!(aug.null_of[pos].is_none());
        }
        // Null tuples follow, ordered by x-tuple index, with the missing mass.
        assert_eq!(aug.null_of[db.len()], Some(0));
        assert_eq!(aug.null_of[db.len() + 1], Some(1));
        assert!((aug.db.tuple(db.len()).prob - 0.5).abs() < 1e-12);
        assert!((aug.db.tuple(db.len() + 1).prob - 0.4).abs() < 1e-12);
        // Every x-tuple of the augmented database has full mass.
        for info in aug.db.x_tuples() {
            assert!((info.total_mass - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn world_count_is_preserved() {
        // Materialising nulls does not change the set of possible worlds.
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(10.0, 0.5)], vec![(9.0, 0.7)]]).unwrap();
        let aug = augment_with_nulls(&db).unwrap();
        assert_eq!(db.world_count(), aug.db.world_count());
    }
}
