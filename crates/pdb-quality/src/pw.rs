//! The PW (possible-world) baseline quality algorithm.
//!
//! PW computes the PWS-quality straight from Definition 4: expand the
//! database into possible worlds, evaluate the deterministic top-k query in
//! each, aggregate identical answers, and take the negated entropy.  Its
//! cost is proportional to the number of possible worlds — exponential in
//! the number of x-tuples — so it is only usable on tiny databases (the
//! paper reports 36 minutes for a 10-x-tuple database).  It exists as the
//! ground-truth oracle for PWR and TP and as the slowest series of
//! Figure 4(d).

use crate::augment::augment_with_nulls;
use crate::pw_results::{PwEntry, PwResultSet};
use pdb_core::world::{worlds_with_limit, DEFAULT_WORLD_LIMIT};
use pdb_core::{DbError, RankedDatabase, Result};
use std::collections::HashMap;

/// Compute the full pw-result distribution of a top-k query by enumerating
/// every possible world (the PW algorithm).
///
/// Refuses databases with more than `DEFAULT_WORLD_LIMIT` possible worlds;
/// use [`pw_result_distribution_with_limit`] to override.
pub fn pw_result_distribution(db: &RankedDatabase, k: usize) -> Result<PwResultSet> {
    pw_result_distribution_with_limit(db, k, DEFAULT_WORLD_LIMIT)
}

/// [`pw_result_distribution`] with an explicit possible-world limit.
pub fn pw_result_distribution_with_limit(
    db: &RankedDatabase,
    k: usize,
    limit: u128,
) -> Result<PwResultSet> {
    if k == 0 {
        return Err(DbError::invalid_parameter("k must be at least 1"));
    }
    let aug = augment_with_nulls(db)?;
    let n_real = db.len();
    let mut map: HashMap<Vec<PwEntry>, f64> = HashMap::new();
    for w in worlds_with_limit(&aug.db, limit)? {
        let answer: Vec<PwEntry> = w
            .top_k(k)
            .into_iter()
            .map(|pos| {
                if pos < n_real {
                    PwEntry::Tuple(pos)
                } else {
                    // pdb-analyze: allow(panic-path): augmentation invariant — every position >= n_real maps to a null
                    PwEntry::Null(aug.null_of[pos].expect("tail positions are nulls"))
                }
            })
            .collect();
        *map.entry(answer).or_insert(0.0) += w.prob;
    }
    Ok(PwResultSet::from_map(map))
}

/// Compute the PWS-quality of a top-k query with the PW algorithm.
pub fn quality_pw(db: &RankedDatabase, k: usize) -> Result<f64> {
    Ok(pw_result_distribution(db, k)?.quality())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn udb2() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(27.0, 1.0)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn udb1_has_seven_pw_results_and_quality_minus_2_55() {
        // Figure 2 of the paper: seven pw-results, quality −2.55.
        let set = pw_result_distribution(&udb1(), 2).unwrap();
        assert_eq!(set.len(), 7);
        assert!((set.total_prob() - 1.0).abs() < 1e-12);
        assert!((set.quality() - (-2.55)).abs() < 0.005);
    }

    #[test]
    fn udb2_has_four_pw_results_and_quality_minus_1_85() {
        // Figure 3 of the paper: four pw-results, quality −1.85.
        let set = pw_result_distribution(&udb2(), 2).unwrap();
        assert_eq!(set.len(), 4);
        assert!((set.quality() - (-1.85)).abs() < 0.005);
        assert!(quality_pw(&udb2(), 2).unwrap() > quality_pw(&udb1(), 2).unwrap());
    }

    #[test]
    fn paper_example_pw_result_probability() {
        // The paper: r = (t1, t2) has probability 0.28 for the top-2 query
        // on udb1 (t1 = 32 °C at position 0, t2 = 30 °C at position 1).
        let set = pw_result_distribution(&udb1(), 2).unwrap();
        let r = set
            .results
            .iter()
            .find(|r| r.entries == vec![PwEntry::Tuple(0), PwEntry::Tuple(1)])
            .expect("(t1, t2) is a pw-result");
        assert!((r.prob - 0.28).abs() < 1e-12);
    }

    #[test]
    fn quality_is_zero_for_a_certain_database() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(3.0, 1.0)], vec![(2.0, 1.0)]]).unwrap();
        assert_eq!(quality_pw(&db, 2).unwrap(), 0.0);
    }

    #[test]
    fn null_padding_appears_in_results() {
        // One uncertain x-tuple with half mass: for k = 1 the answers are
        // (t0) and (null of x0).
        let db = RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 0.5)]]).unwrap();
        let set = pw_result_distribution(&db, 1).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.results.iter().any(|r| r.entries == vec![PwEntry::Null(0)]));
        assert!((set.quality() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters_and_large_databases() {
        assert!(quality_pw(&udb1(), 0).is_err());
        assert!(pw_result_distribution_with_limit(&udb1(), 2, 4).is_err());
    }
}
