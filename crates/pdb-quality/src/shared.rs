//! Shared query + quality evaluation (Section IV-C of the paper).
//!
//! The three query semantics and the TP quality algorithm all consume the
//! rank-probability information produced by one PSR run.
//! [`SharedEvaluation`] performs that run once and serves queries, quality
//! scores and the per-x-tuple quality breakdown from it, which is what the
//! paper measures in Figure 5 ("the quality computation time is only 6% of
//! the query evaluation time").
//!
//! The evaluation can also be carried *across* database versions: when a
//! cleaning probe mutates a single x-tuple,
//! [`SharedEvaluation::apply_collapse`] patches the stored rank
//! probabilities through the incremental delta engine
//! ([`pdb_engine::delta`]) instead of re-running PSR, and returns the
//! updated evaluation together with the change to the quality score and
//! the fresh per-x-tuple decomposition `g(l, D′)` that the cleaning
//! algorithms re-plan from.

use crate::tp::{quality_breakdown, quality_tp_with, QualityBreakdown};
use pdb_core::{RankedDatabase, Result};
use pdb_engine::delta::{apply_mutation_in_place, DeltaStats, XTupleMutation};
use pdb_engine::psr::{rank_probabilities, RankProbabilities};
use pdb_engine::queries::{global_topk, pt_k, u_k_ranks, TupleSetAnswer, UKRanksAnswer};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel bit pattern marking the quality cache as empty.  It decodes to
/// a NaN, which a real quality score (a finite weighted sum) can never be.
const QUALITY_UNCACHED: u64 = u64::MAX;

/// One PSR run serving both query answers and quality scores.
#[derive(Debug)]
pub struct SharedEvaluation<'a> {
    db: Cow<'a, RankedDatabase>,
    rp: RankProbabilities,
    /// Lazily computed (and mutation-maintained) quality score, so probe
    /// loops don't pay the O(n) weighted sum more than once per version.
    /// Stored as bit-cast f64 in an atomic (rather than a `Cell`) so the
    /// evaluation stays `Sync` and can be shared across threads; the
    /// benign race recomputes the same idempotent value.
    cached_quality: AtomicU64,
}

impl Clone for SharedEvaluation<'_> {
    fn clone(&self) -> Self {
        Self {
            db: self.db.clone(),
            rp: self.rp.clone(),
            cached_quality: AtomicU64::new(self.cached_quality.load(Ordering::Relaxed)),
        }
    }
}

/// Result of applying one probe outcome to a [`SharedEvaluation`]
/// incrementally: the evaluation of the mutated database plus everything
/// an adaptive re-planner needs to pick the next probe.
#[derive(Debug, Clone)]
pub struct CollapseOutcome {
    /// Evaluation of the mutated database (owns its database, so it
    /// outlives the pre-mutation borrow).
    pub eval: SharedEvaluation<'static>,
    /// `S(D′, Q)`: the quality score after the mutation.
    pub quality: f64,
    /// `S(D′, Q) − S(D, Q)`: the realised change to the quality score.
    pub quality_delta: f64,
    /// The per-x-tuple decomposition `g(l, D′)` of the new quality score,
    /// indexed by the mutated database's x-indices.
    pub g: Vec<f64>,
    /// How the delta engine produced the updated rows.
    pub stats: DeltaStats,
}

/// [`CollapseOutcome`] for the in-place form
/// ([`SharedEvaluation::apply_collapse_in_place`]): the evaluation itself
/// was updated, so only the re-planning quantities are returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollapseUpdate {
    /// `S(D′, Q)`: the quality score after the mutation.
    pub quality: f64,
    /// `S(D′, Q) − S(D, Q)`: the realised change to the quality score.
    pub quality_delta: f64,
    /// The per-x-tuple decomposition `g(l, D′)`, indexed by the mutated
    /// database's x-indices.
    pub g: Vec<f64>,
    /// How the delta engine produced the updated rows.
    pub stats: DeltaStats,
}

impl<'a> SharedEvaluation<'a> {
    /// Run PSR once for the given `k`.
    pub fn new(db: &'a RankedDatabase, k: usize) -> Result<Self> {
        let rp = rank_probabilities(db, k)?;
        Ok(Self { db: Cow::Borrowed(db), rp, cached_quality: AtomicU64::new(QUALITY_UNCACHED) })
    }

    /// Run PSR once for the given `k`, taking ownership of the database
    /// (the form long-lived sessions use, since the evaluation then borrows
    /// nothing).
    pub fn from_owned(db: RankedDatabase, k: usize) -> Result<SharedEvaluation<'static>> {
        let rp = rank_probabilities(&db, k)?;
        Ok(SharedEvaluation {
            db: Cow::Owned(db),
            rp,
            cached_quality: AtomicU64::new(QUALITY_UNCACHED),
        })
    }

    /// Build from rank probabilities computed elsewhere.
    pub fn from_rank_probabilities(db: &'a RankedDatabase, rp: RankProbabilities) -> Self {
        Self { db: Cow::Borrowed(db), rp, cached_quality: AtomicU64::new(QUALITY_UNCACHED) }
    }

    /// The `k` the evaluation was prepared for.
    pub fn k(&self) -> usize {
        self.rp.k()
    }

    /// The database under evaluation.
    pub fn database(&self) -> &RankedDatabase {
        &self.db
    }

    /// Apply a single-x-tuple mutation (one observed probe outcome)
    /// through the incremental delta engine: the stored rank probabilities
    /// are patched with one divide + one multiply per affected row instead
    /// of a full PSR + TP rerun (see [`pdb_engine::delta`] for when the
    /// engine falls back to rebuilding rows).
    ///
    /// The returned outcome carries the updated evaluation, the quality
    /// delta `S(D′, Q) − S(D, Q)` and the per-x-tuple contribution vector
    /// `g(l, D′)`; the pre-mutation evaluation is untouched and remains
    /// usable as a correctness oracle.
    pub fn apply_collapse(&self, l: usize, mutation: &XTupleMutation) -> Result<CollapseOutcome> {
        let mut next = SharedEvaluation {
            db: Cow::Owned(self.database().clone()),
            rp: self.rp.clone(),
            cached_quality: AtomicU64::new(self.cached_quality.load(Ordering::Relaxed)),
        };
        let update = next.apply_collapse_in_place(l, mutation)?;
        Ok(CollapseOutcome {
            quality: update.quality,
            quality_delta: update.quality_delta,
            g: update.g,
            stats: update.stats,
            eval: next,
        })
    }

    /// [`apply_collapse`](Self::apply_collapse) without cloning: the
    /// evaluation itself is advanced to the mutated database.  This is the
    /// per-probe step of an adaptive session — rows untouched by the
    /// mutation are not even copied.  All validation happens before
    /// anything is mutated, so on `Err` the evaluation is unchanged.
    pub fn apply_collapse_in_place(
        &mut self,
        l: usize,
        mutation: &XTupleMutation,
    ) -> Result<CollapseUpdate> {
        let quality_before = self.quality();
        let stats = apply_mutation_in_place(self.db.to_mut(), &mut self.rp, l, mutation)?;
        let breakdown = quality_breakdown(self.database(), &self.rp);
        self.cached_quality.store(breakdown.quality.to_bits(), Ordering::Relaxed);
        Ok(CollapseUpdate {
            quality: breakdown.quality,
            quality_delta: breakdown.quality - quality_before,
            g: breakdown.x_tuple_contribution,
            stats,
        })
    }

    /// The underlying rank-probability information.
    pub fn rank_probabilities(&self) -> &RankProbabilities {
        &self.rp
    }

    /// Answer a PT-k query (tuples with top-k probability ≥ `threshold`).
    pub fn pt_k(&self, threshold: f64) -> Result<TupleSetAnswer> {
        pt_k(self.database(), &self.rp, threshold)
    }

    /// Answer a U-kRanks query.
    pub fn u_k_ranks(&self) -> UKRanksAnswer {
        u_k_ranks(self.database(), &self.rp)
    }

    /// Answer a Global-topk query.
    pub fn global_topk(&self) -> TupleSetAnswer {
        global_topk(self.database(), &self.rp)
    }

    /// The PWS-quality of the top-k query, computed with TP from the shared
    /// rank probabilities (cached per database version).
    pub fn quality(&self) -> f64 {
        let bits = self.cached_quality.load(Ordering::Relaxed);
        if bits != QUALITY_UNCACHED {
            return f64::from_bits(bits);
        }
        let q = quality_tp_with(self.database(), &self.rp);
        self.cached_quality.store(q.to_bits(), Ordering::Relaxed);
        q
    }

    /// The quality together with its per-x-tuple decomposition `g(l, D)`,
    /// which the cleaning algorithms consume.
    pub fn quality_breakdown(&self) -> QualityBreakdown {
        quality_breakdown(self.database(), &self.rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::quality_pw;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn serves_queries_and_quality_from_one_psr_run() {
        let db = udb1();
        let shared = SharedEvaluation::new(&db, 2).unwrap();
        assert_eq!(shared.k(), 2);
        assert_eq!(shared.database().len(), 7);

        let pt = shared.pt_k(0.4).unwrap();
        assert_eq!(pt.len(), 3);

        let uk = shared.u_k_ranks();
        assert_eq!(uk.k(), 2);

        let gt = shared.global_topk();
        assert_eq!(gt.len(), 2);

        let q = shared.quality();
        assert!((q - quality_pw(&db, 2).unwrap()).abs() < 1e-8);

        let b = shared.quality_breakdown();
        assert!((b.quality - q).abs() < 1e-12);
    }

    #[test]
    fn can_reuse_externally_computed_probabilities() {
        let db = udb1();
        let rp = rank_probabilities(&db, 3).unwrap();
        let shared = SharedEvaluation::from_rank_probabilities(&db, rp.clone());
        assert_eq!(shared.rank_probabilities(), &rp);
        assert!((shared.quality() - quality_pw(&db, 3).unwrap()).abs() < 1e-8);
    }

    #[test]
    fn invalid_k_is_rejected() {
        let db = udb1();
        assert!(SharedEvaluation::new(&db, 0).is_err());
    }

    #[test]
    fn evaluation_is_send_and_sync() {
        // The quality cache must not cost the type its thread-shareability
        // (callers fan read-only query evaluation out across threads).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedEvaluation<'static>>();
    }

    #[test]
    fn apply_collapse_matches_a_fresh_evaluation() {
        // Collapse S3 to its 27° reading: the paper's udb1 → udb2
        // transition, whose quality improves from ≈ −2.55 to ≈ −1.85.
        let db = udb1();
        let shared = SharedEvaluation::new(&db, 2).unwrap();
        let before = shared.quality();
        let out = shared
            .apply_collapse(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        assert!((out.quality - (-1.85)).abs() < 0.005);
        assert!((out.quality_delta - (out.quality - before)).abs() < 1e-12);
        assert_eq!(out.g.len(), 4);
        assert!((out.g.iter().sum::<f64>() - out.quality).abs() < 1e-12);
        assert!(out.stats.rows_total() > 0);

        // The incremental evaluation agrees with a from-scratch one.
        let fresh = SharedEvaluation::new(out.eval.database(), 2).unwrap();
        assert!((out.eval.quality() - fresh.quality()).abs() < 1e-9);
        assert_eq!(out.eval.pt_k(0.4).unwrap().len(), fresh.pt_k(0.4).unwrap().len());

        // The pre-mutation evaluation is untouched.
        assert!((shared.quality() - before).abs() < 1e-12);
    }

    #[test]
    fn collapse_update_round_trips_through_json() {
        let db = udb1();
        let mut eval = SharedEvaluation::from_owned(db, 2).unwrap();
        let update = eval
            .apply_collapse_in_place(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        let json = serde_json::to_string(&update).unwrap();
        let back: CollapseUpdate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, update, "via {json}");
    }

    #[test]
    fn apply_collapse_chains_across_owned_evaluations() {
        let db = udb1();
        let mut eval = SharedEvaluation::from_owned(db, 2).unwrap();
        let mut quality = eval.quality();
        for l in [2usize, 1, 0] {
            let keep_pos = eval.database().x_tuple(l).members[0];
            let out = eval
                .apply_collapse(l, &XTupleMutation::CollapseToAlternative { keep_pos })
                .unwrap();
            assert!(out.quality >= quality - 1e-12, "collapsing never hurts the quality score");
            quality = out.quality;
            eval = out.eval;
        }
        // Every x-tuple is certain now, so the ambiguity is fully resolved.
        assert!(quality.abs() < 1e-9);
        assert!((quality - quality_pw(eval.database(), 2).unwrap()).abs() < 1e-8);
    }
}
