//! Shared query + quality evaluation (Section IV-C of the paper).
//!
//! The three query semantics and the TP quality algorithm all consume the
//! rank-probability information produced by one PSR run.
//! [`SharedEvaluation`] performs that run once and serves queries, quality
//! scores and the per-x-tuple quality breakdown from it, which is what the
//! paper measures in Figure 5 ("the quality computation time is only 6% of
//! the query evaluation time").

use crate::tp::{quality_breakdown, quality_tp_with, QualityBreakdown};
use pdb_core::{RankedDatabase, Result};
use pdb_engine::psr::{rank_probabilities, RankProbabilities};
use pdb_engine::queries::{global_topk, pt_k, u_k_ranks, TupleSetAnswer, UKRanksAnswer};

/// One PSR run serving both query answers and quality scores.
#[derive(Debug, Clone)]
pub struct SharedEvaluation<'a> {
    db: &'a RankedDatabase,
    rp: RankProbabilities,
}

impl<'a> SharedEvaluation<'a> {
    /// Run PSR once for the given `k`.
    pub fn new(db: &'a RankedDatabase, k: usize) -> Result<Self> {
        let rp = rank_probabilities(db, k)?;
        Ok(Self { db, rp })
    }

    /// Build from rank probabilities computed elsewhere.
    pub fn from_rank_probabilities(db: &'a RankedDatabase, rp: RankProbabilities) -> Self {
        Self { db, rp }
    }

    /// The `k` the evaluation was prepared for.
    pub fn k(&self) -> usize {
        self.rp.k()
    }

    /// The database under evaluation.
    pub fn database(&self) -> &RankedDatabase {
        self.db
    }

    /// The underlying rank-probability information.
    pub fn rank_probabilities(&self) -> &RankProbabilities {
        &self.rp
    }

    /// Answer a PT-k query (tuples with top-k probability ≥ `threshold`).
    pub fn pt_k(&self, threshold: f64) -> Result<TupleSetAnswer> {
        pt_k(self.db, &self.rp, threshold)
    }

    /// Answer a U-kRanks query.
    pub fn u_k_ranks(&self) -> UKRanksAnswer {
        u_k_ranks(self.db, &self.rp)
    }

    /// Answer a Global-topk query.
    pub fn global_topk(&self) -> TupleSetAnswer {
        global_topk(self.db, &self.rp)
    }

    /// The PWS-quality of the top-k query, computed with TP from the shared
    /// rank probabilities.
    pub fn quality(&self) -> f64 {
        quality_tp_with(self.db, &self.rp)
    }

    /// The quality together with its per-x-tuple decomposition `g(l, D)`,
    /// which the cleaning algorithms consume.
    pub fn quality_breakdown(&self) -> QualityBreakdown {
        quality_breakdown(self.db, &self.rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::quality_pw;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    #[test]
    fn serves_queries_and_quality_from_one_psr_run() {
        let db = udb1();
        let shared = SharedEvaluation::new(&db, 2).unwrap();
        assert_eq!(shared.k(), 2);
        assert_eq!(shared.database().len(), 7);

        let pt = shared.pt_k(0.4).unwrap();
        assert_eq!(pt.len(), 3);

        let uk = shared.u_k_ranks();
        assert_eq!(uk.k(), 2);

        let gt = shared.global_topk();
        assert_eq!(gt.len(), 2);

        let q = shared.quality();
        assert!((q - quality_pw(&db, 2).unwrap()).abs() < 1e-8);

        let b = shared.quality_breakdown();
        assert!((b.quality - q).abs() < 1e-12);
    }

    #[test]
    fn can_reuse_externally_computed_probabilities() {
        let db = udb1();
        let rp = rank_probabilities(&db, 3).unwrap();
        let shared = SharedEvaluation::from_rank_probabilities(&db, rp.clone());
        assert_eq!(shared.rank_probabilities(), &rp);
        assert!((shared.quality() - quality_pw(&db, 3).unwrap()).abs() < 1e-8);
    }

    #[test]
    fn invalid_k_is_rejected() {
        let db = udb1();
        assert!(SharedEvaluation::new(&db, 0).is_err());
    }
}
