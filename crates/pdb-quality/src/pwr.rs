//! The PWR quality algorithm (Algorithm 1 of the paper).
//!
//! PWR derives the pw-result distribution *directly*, without expanding
//! possible worlds: a depth-first search over the rank-sorted tuples
//! enumerates every achievable top-k answer exactly once, and Lemma 1 gives
//! each answer's probability in closed form:
//!
//! ```text
//! Pr(r) = Π_{tᵢ ∈ r} eᵢ  ·  Π_{τ_l ∩ r = ∅} (1 − Σ_{tᵢ ∈ τ_l, tᵢ > r.t} eᵢ)
//! ```
//!
//! where `r.t` is the lowest-ranked member of `r`.  The search prunes two
//! kinds of zero-probability branches: a tuple whose x-tuple already
//! contributed to `r` cannot exist (mutual exclusion), and once an x-tuple
//! not represented in `r` has had its entire mass skipped, every completion
//! of the branch has probability zero (this is the paper's "forced
//! inclusion" rule, step 10 of Algorithm 1, in contrapositive form).
//!
//! The number of pw-results is bounded by `n^k`, so PWR is polynomial in
//! the database size but exponential in `k`; the evaluation section shows it
//! losing to TP as either grows — behaviour reproduced by the
//! `quality_scaling` bench and Figures 4(e)/4(f) of the harness.

use crate::augment::augment_with_nulls;
use crate::pw_results::{plogp, PwEntry, PwResultSet};
use pdb_core::{DbError, RankedDatabase, Result};
use std::collections::HashMap;

/// Mass above which an x-tuple with no representative in `r` is considered
/// fully skipped (dead), making every completion of the branch impossible.
const DEAD_THRESHOLD: f64 = 1.0 - 1e-12;

/// Stack size for the DFS worker thread.  The recursion depth is bounded by
/// the number of tuples, which can reach the hundreds of thousands in the
/// scaling experiments; the virtual allocation is cheap on 64-bit targets.
const DFS_STACK_BYTES: usize = 512 * 1024 * 1024;

/// What the DFS should produce.
enum Sink<'a> {
    /// Collect the full distribution (used for Figures 2/3 and tests).
    Distribution(&'a mut HashMap<Vec<PwEntry>, f64>),
    /// Accumulate `Σ Pr(r) log₂ Pr(r)` only (used for large databases).
    QualityOnly(&'a mut f64),
}

struct Dfs<'a> {
    db: &'a RankedDatabase,
    null_of: &'a [Option<usize>],
    n_real: usize,
    k: usize,
    /// Whether x-tuple `l` already has a representative in `r`.
    in_result: Vec<bool>,
    /// Mass of x-tuple `l`'s tuples skipped so far along the current path.
    excluded_mass: Vec<f64>,
    /// x-tuples with non-zero excluded mass, maintained as a stack.
    touched: Vec<usize>,
    /// Current partial pw-result (rank positions, ascending).
    r: Vec<usize>,
    /// Product of the existential probabilities of the tuples in `r`.
    r_prob: f64,
    /// How many more pw-results may be recorded before the search gives up
    /// (`None` = unlimited).
    remaining: Option<u64>,
    /// Set when the result budget is exhausted; unwinds the search.
    aborted: bool,
    sink: Sink<'a>,
}

impl Dfs<'_> {
    fn record(&mut self) {
        if let Some(rem) = &mut self.remaining {
            if *rem == 0 {
                self.aborted = true;
                return;
            }
            *rem -= 1;
        }
        // Lemma 1: membership factor Π eᵢ (maintained incrementally in
        // `r_prob`) times, for every x-tuple without a representative, the
        // probability that none of its higher-ranked tuples exists.
        let mut prob = self.r_prob;
        for &l in &self.touched {
            if !self.in_result[l] {
                prob *= 1.0 - self.excluded_mass[l];
            }
        }
        if prob <= 0.0 {
            return;
        }
        match &mut self.sink {
            Sink::Distribution(map) => {
                let entries: Vec<PwEntry> = self
                    .r
                    .iter()
                    .map(|&pos| {
                        if pos < self.n_real {
                            PwEntry::Tuple(pos)
                        } else {
                            // pdb-analyze: allow(panic-path): augmentation invariant — every position >= n_real maps to a null
                            PwEntry::Null(self.null_of[pos].expect("tail positions are nulls"))
                        }
                    })
                    .collect();
                *map.entry(entries).or_insert(0.0) += prob;
            }
            Sink::QualityOnly(acc) => **acc += plogp(prob),
        }
    }

    fn dfs(&mut self, i: usize) {
        if self.aborted {
            return;
        }
        if self.r.len() == self.k || i == self.db.len() {
            self.record();
            return;
        }
        let t = *self.db.tuple(i);
        let l = t.x_index;

        if self.in_result[l] {
            // Mutual exclusion: a sibling is already part of the answer, so
            // this tuple cannot exist (Algorithm 1, step 8).
            self.dfs(i + 1);
            return;
        }

        // Branch 1: the tuple exists and joins the answer.
        if t.prob > 0.0 {
            self.in_result[l] = true;
            self.r.push(i);
            self.r_prob *= t.prob;
            self.dfs(i + 1);
            self.r_prob /= t.prob;
            self.r.pop();
            self.in_result[l] = false;
        }

        // Branch 2: the tuple does not exist.  Prune once the x-tuple's
        // whole mass has been skipped — no later tuple can rescue it, so
        // every completion has probability zero (step 10 in contrapositive).
        // pdb-analyze: allow(float-eq): excluded_mass is reset to exactly 0.0 between scans, so first-touch detection is exact by construction
        let first_touch = self.excluded_mass[l] == 0.0;
        self.excluded_mass[l] += t.prob;
        if first_touch && t.prob > 0.0 {
            self.touched.push(l);
        }
        if self.excluded_mass[l] < DEAD_THRESHOLD {
            self.dfs(i + 1);
        }
        self.excluded_mass[l] -= t.prob;
        if first_touch && t.prob > 0.0 {
            let popped = self.touched.pop();
            debug_assert_eq!(popped, Some(l));
            self.excluded_mass[l] = 0.0;
        }
    }
}

/// Runs the DFS; returns `true` when it completed, `false` when it gave up
/// because the pw-result budget was exhausted.
fn run_dfs(db: &RankedDatabase, k: usize, limit: Option<u64>, sink: Sink<'_>) -> Result<bool> {
    if k == 0 {
        return Err(DbError::invalid_parameter("k must be at least 1"));
    }
    let aug = augment_with_nulls(db)?;
    let mut dfs = Dfs {
        db: &aug.db,
        null_of: &aug.null_of,
        n_real: db.len(),
        k,
        in_result: vec![false; aug.db.num_x_tuples()],
        excluded_mass: vec![0.0; aug.db.num_x_tuples()],
        touched: Vec::new(),
        r: Vec::with_capacity(k),
        r_prob: 1.0,
        remaining: limit,
        aborted: false,
        sink,
    };
    // The recursion is as deep as the database is long; run it on a worker
    // thread with a generous stack instead of risking the caller's.
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("pwr-dfs".into())
            .stack_size(DFS_STACK_BYTES)
            .spawn_scoped(scope, || dfs.dfs(0))
            // pdb-analyze: allow(panic-path): thread-spawn failure is unrecoverable resource exhaustion; fail-stop is intended
            .expect("spawning the PWR worker thread succeeds")
            .join()
            // pdb-analyze: allow(panic-path): the worker runs the same DFS this thread would; a panic there is a bug, not input
            .expect("the PWR worker thread does not panic");
    });
    Ok(!dfs.aborted)
}

/// Compute the full pw-result distribution with the PWR algorithm
/// (Algorithm 1 + Lemma 1).
pub fn pwr_result_distribution(db: &RankedDatabase, k: usize) -> Result<PwResultSet> {
    let mut map = HashMap::new();
    run_dfs(db, k, None, Sink::Distribution(&mut map))?;
    Ok(PwResultSet::from_map(map))
}

/// Compute the PWS-quality with the PWR algorithm without materialising the
/// pw-result distribution (each result's probability is folded straight
/// into the entropy sum).
pub fn quality_pwr(db: &RankedDatabase, k: usize) -> Result<f64> {
    let mut acc = 0.0;
    run_dfs(db, k, None, Sink::QualityOnly(&mut acc))?;
    Ok(acc)
}

/// Like [`quality_pwr`], but gives up once more than `max_pw_results`
/// pw-results have been produced, returning `Ok(None)`.
///
/// The experiment harness uses this to reproduce the paper's observation
/// that PWR "cannot return the quality score in a reasonable time" on large
/// databases or large `k` (Figures 4(e)/4(f)) without actually burning that
/// time.
pub fn quality_pwr_bounded(
    db: &RankedDatabase,
    k: usize,
    max_pw_results: u64,
) -> Result<Option<f64>> {
    let mut acc = 0.0;
    let completed = run_dfs(db, k, Some(max_pw_results), Sink::QualityOnly(&mut acc))?;
    Ok(completed.then_some(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::{pw_result_distribution, quality_pw};

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn assert_same_distribution(a: &PwResultSet, b: &PwResultSet) {
        assert_eq!(a.len(), b.len());
        let to_map = |s: &PwResultSet| -> HashMap<Vec<PwEntry>, f64> {
            s.results.iter().map(|r| (r.entries.clone(), r.prob)).collect()
        };
        let (ma, mb) = (to_map(a), to_map(b));
        for (k, v) in &ma {
            let w = mb.get(k).unwrap_or_else(|| panic!("missing pw-result {k:?}"));
            assert!((v - w).abs() < 1e-10, "{k:?}: {v} vs {w}");
        }
    }

    #[test]
    fn agrees_with_pw_on_udb1_for_all_k() {
        let db = udb1();
        for k in 1..=5 {
            let pw = pw_result_distribution(&db, k).unwrap();
            let pwr = pwr_result_distribution(&db, k).unwrap();
            assert_same_distribution(&pw, &pwr);
            assert!((quality_pwr(&db, k).unwrap() - quality_pw(&db, k).unwrap()).abs() < 1e-10);
            assert!((pwr.total_prob() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_paper_quality_values() {
        let db = udb1();
        assert!((quality_pwr(&db, 2).unwrap() - (-2.55)).abs() < 0.005);
        assert_eq!(pwr_result_distribution(&db, 2).unwrap().len(), 7);
    }

    #[test]
    fn agrees_with_pw_on_null_mass_databases() {
        let db = RankedDatabase::from_scored_x_tuples(&[
            vec![(10.0, 0.5)],
            vec![(9.0, 0.4), (8.0, 0.2)],
            vec![(7.0, 0.9)],
            vec![(6.0, 1.0)],
        ])
        .unwrap();
        for k in 1..=4 {
            let pw = pw_result_distribution(&db, k).unwrap();
            let pwr = pwr_result_distribution(&db, k).unwrap();
            assert_same_distribution(&pw, &pwr);
        }
    }

    #[test]
    fn agrees_with_pw_on_random_databases() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let m = rng.gen_range(2..7);
            let mut x_tuples = Vec::new();
            for _ in 0..m {
                let alts = rng.gen_range(1..4);
                let mut remaining: f64 = 1.0;
                let mut v = Vec::new();
                for _ in 0..alts {
                    let p = remaining * rng.gen_range(0.2..0.9);
                    remaining -= p;
                    v.push((rng.gen_range(0.0..100.0), p));
                }
                x_tuples.push(v);
            }
            let db = RankedDatabase::from_scored_x_tuples(&x_tuples).unwrap();
            let k = rng.gen_range(1..5);
            let pw = quality_pw(&db, k).unwrap();
            let pwr = quality_pwr(&db, k).unwrap();
            assert!((pw - pwr).abs() < 1e-8, "trial {trial}: PW {pw} vs PWR {pwr}");
        }
    }

    #[test]
    fn k_larger_than_database_is_handled() {
        let db =
            RankedDatabase::from_scored_x_tuples(&[vec![(1.0, 0.5)], vec![(2.0, 1.0)]]).unwrap();
        let pw = pw_result_distribution(&db, 10).unwrap();
        let pwr = pwr_result_distribution(&db, 10).unwrap();
        assert_same_distribution(&pw, &pwr);
    }

    #[test]
    fn certain_tuples_with_probability_one_do_not_branch() {
        // A long chain of certain tuples: exactly one pw-result.
        let x: Vec<Vec<(f64, f64)>> = (0..50).map(|i| vec![(100.0 - i as f64, 1.0)]).collect();
        let db = RankedDatabase::from_scored_x_tuples(&x).unwrap();
        let set = pwr_result_distribution(&db, 10).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(quality_pwr(&db, 10).unwrap(), 0.0);
    }

    #[test]
    fn rejects_k_zero() {
        assert!(quality_pwr(&udb1(), 0).is_err());
        assert!(pwr_result_distribution(&udb1(), 0).is_err());
        assert!(quality_pwr_bounded(&udb1(), 0, 10).is_err());
    }

    #[test]
    fn bounded_run_gives_up_or_matches_exactly() {
        let db = udb1();
        // udb1 has 7 pw-results for k = 2: a budget of 3 gives up, a budget
        // of 7 (or more) completes and matches the unbounded run.
        assert_eq!(quality_pwr_bounded(&db, 2, 3).unwrap(), None);
        let full = quality_pwr(&db, 2).unwrap();
        assert_eq!(quality_pwr_bounded(&db, 2, 7).unwrap(), Some(full));
        assert_eq!(quality_pwr_bounded(&db, 2, 1_000).unwrap(), Some(full));
    }
}
