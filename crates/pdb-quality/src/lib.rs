//! # pdb-quality — PWS-quality of probabilistic top-k queries
//!
//! This crate implements the first contribution of the ICDE 2013 paper
//! *"Cleaning Uncertain Data for Top-k Queries"*: computing the
//! **PWS-quality** (the negated entropy of the pw-result distribution,
//! Definition 4) of U-kRanks, PT-k and Global-topk queries, with three
//! algorithms of increasing sophistication:
//!
//! | Algorithm | Module | Cost | Role |
//! |-----------|--------|------|------|
//! | PW  | [`pw`]  | exponential (possible worlds) | ground-truth baseline |
//! | PWR | [`pwr`] | `O(n^{k+1})` (pw-results)      | avoids world expansion |
//! | TP  | [`tp`]  | `O(k·n)` (Theorem 1 + PSR)     | the paper's fast path |
//!
//! [`shared::SharedEvaluation`] runs PSR once and serves both query answers
//! and quality scores from it (Section IV-C), which is the configuration
//! the paper benchmarks in Figure 5.  [`batch::BatchQuality`] extends the
//! same sharing across a whole set of registered queries: one PSR run at
//! `k_max` serves every query's answer *and* quality score, plus the
//! aggregate decomposition a multi-query cleaner plans from.
//!
//! ```
//! use pdb_core::prelude::*;
//! use pdb_quality::prelude::*;
//!
//! let db = pdb_core::examples::udb1().rank_by(&ScoreRanking);
//! // The three algorithms agree; TP is the one to use in practice.
//! let q = quality_tp(&db, 2).unwrap();
//! assert!((q - quality_pw(&db, 2).unwrap()).abs() < 1e-8);
//! assert!((q - (-2.55)).abs() < 0.005); // the paper's udb1 value
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod augment;
pub mod batch;
pub mod pw;
pub mod pw_results;
pub mod pwr;
pub mod shared;
pub mod tp;

pub use batch::{BatchCollapseUpdate, BatchQuality, WeightedQuery};
pub use pw::{pw_result_distribution, quality_pw};
pub use pw_results::{PwEntry, PwResult, PwResultSet};
pub use pwr::{pwr_result_distribution, quality_pwr, quality_pwr_bounded};
pub use shared::{CollapseOutcome, CollapseUpdate, SharedEvaluation};
pub use tp::{quality_breakdown, quality_tp, quality_tp_with, tuple_weights, QualityBreakdown};

// Re-exported so downstream crates (the adaptive cleaning session, the
// batch consumers in pdb-clean and the CLI) can name probe mutations and
// registered queries without depending on pdb-engine directly.
pub use pdb_engine::delta::{DeltaStats, XTupleMutation};
pub use pdb_engine::queries::{QueryAnswer, TopKQuery};

/// Convenience prelude bringing the most frequently used items into scope.
pub mod prelude {
    pub use crate::batch::{BatchCollapseUpdate, BatchQuality, WeightedQuery};
    pub use crate::pw::{pw_result_distribution, quality_pw};
    pub use crate::pw_results::{PwEntry, PwResult, PwResultSet};
    pub use crate::pwr::{pwr_result_distribution, quality_pwr, quality_pwr_bounded};
    pub use crate::shared::{CollapseOutcome, CollapseUpdate, SharedEvaluation};
    pub use crate::tp::{
        quality_breakdown, quality_tp, quality_tp_with, tuple_weights, QualityBreakdown,
    };
    pub use pdb_engine::delta::{DeltaStats, XTupleMutation};
    pub use pdb_engine::queries::{QueryAnswer, TopKQuery};
}
