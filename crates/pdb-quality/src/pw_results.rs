//! pw-result types and the entropy-based PWS-quality score.
//!
//! A **pw-result** (Definition 1 of the paper) is the answer a
//! deterministic top-k query returns in one possible world: an ordered list
//! of `k` tuples (padded with null tuples when fewer than `k` real tuples
//! exist in the world).  The **PWS-quality** (Definition 4) of a query is
//! the negated entropy of the pw-result distribution:
//!
//! ```text
//! S(D, Q) = Σ_r Pr(r) · log₂ Pr(r)      (≤ 0, higher is better)
//! ```

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One entry of a pw-result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PwEntry {
    /// A real tuple, identified by its rank position in the (un-augmented)
    /// ranked database.
    Tuple(usize),
    /// The null alternative of the x-tuple with the given index; appears
    /// when a possible world holds fewer than `k` real tuples.
    Null(usize),
}

impl PwEntry {
    /// The rank position for a real tuple, `None` for a null entry.
    pub fn position(&self) -> Option<usize> {
        match self {
            PwEntry::Tuple(p) => Some(*p),
            PwEntry::Null(_) => None,
        }
    }
}

/// A pw-result together with its probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PwResult {
    /// The ordered (descending rank) entries of the deterministic top-k
    /// answer.
    pub entries: Vec<PwEntry>,
    /// Probability that a random possible world produces exactly this
    /// answer.
    pub prob: f64,
}

/// The full distribution of pw-results of a query, as produced by the PW
/// and PWR algorithms.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PwResultSet {
    /// The distinct pw-results; order is unspecified.
    pub results: Vec<PwResult>,
}

impl PwResultSet {
    /// Build from an aggregation map.
    pub(crate) fn from_map(map: HashMap<Vec<PwEntry>, f64>) -> Self {
        let mut results: Vec<PwResult> =
            map.into_iter().map(|(entries, prob)| PwResult { entries, prob }).collect();
        // Deterministic order: by descending probability, then entries.
        results.sort_by(|a, b| b.prob.total_cmp(&a.prob).then_with(|| a.entries.cmp(&b.entries)));
        Self { results }
    }

    /// Number of distinct pw-results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Total probability mass (should be 1 within floating-point error).
    pub fn total_prob(&self) -> f64 {
        self.results.iter().map(|r| r.prob).sum()
    }

    /// The PWS-quality score: `Σ Pr(r) log₂ Pr(r)`.
    pub fn quality(&self) -> f64 {
        self.results.iter().map(|r| plogp(r.prob)).sum()
    }
}

/// `x · log₂ x`, with the information-theoretic convention `0·log 0 = 0`.
pub fn plogp(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plogp_handles_edge_cases() {
        assert_eq!(plogp(0.0), 0.0);
        assert_eq!(plogp(-1.0), 0.0);
        assert_eq!(plogp(1.0), 0.0);
        assert!((plogp(0.5) - (-0.5)).abs() < 1e-12);
        assert!((plogp(0.25) - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn quality_of_a_single_result_is_zero() {
        let mut map = HashMap::new();
        map.insert(vec![PwEntry::Tuple(0), PwEntry::Tuple(1)], 1.0);
        let set = PwResultSet::from_map(map);
        assert_eq!(set.len(), 1);
        assert_eq!(set.quality(), 0.0);
        assert!((set.total_prob() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_distribution_minimises_quality() {
        // Four equally likely pw-results: S = log2(1/4) = -2.
        let mut map = HashMap::new();
        for i in 0..4 {
            map.insert(vec![PwEntry::Tuple(i)], 0.25);
        }
        let set = PwResultSet::from_map(map);
        assert!((set.quality() - (-2.0)).abs() < 1e-12);
        assert!(!set.is_empty());
    }

    #[test]
    fn results_are_sorted_by_descending_probability() {
        let mut map = HashMap::new();
        map.insert(vec![PwEntry::Tuple(0)], 0.2);
        map.insert(vec![PwEntry::Tuple(1)], 0.5);
        map.insert(vec![PwEntry::Null(0)], 0.3);
        let set = PwResultSet::from_map(map);
        let probs: Vec<f64> = set.results.iter().map(|r| r.prob).collect();
        assert_eq!(probs, vec![0.5, 0.3, 0.2]);
        assert_eq!(set.results[1].entries[0], PwEntry::Null(0));
    }

    #[test]
    fn entry_position_accessor() {
        assert_eq!(PwEntry::Tuple(3).position(), Some(3));
        assert_eq!(PwEntry::Null(2).position(), None);
    }
}
