//! Equivalence of the batched multi-query shared evaluation and
//! independent per-query runs.
//!
//! [`BatchQuality`] promises that every registered query is served from
//! the one shared `k_max` PSR run exactly as if it had paid its own full
//! PSR + TP pipeline: identical rank probabilities (the prefix property
//! is bit-for-bit), identical answers, and quality scores within the
//! documented 1e-8 tolerance of an independent run.  These tests pin that
//! promise across proptest-generated databases and query sets — including
//! `kᵢ = n`, `kᵢ > n`, single-query degenerate batches, duplicate `kᵢ`,
//! and mixed semantics — and across delta-patched (post-collapse) batch
//! states.

use pdb_core::RankedDatabase;
use pdb_engine::batch::BatchEvaluation;
use pdb_engine::psr::{rank_probabilities, RankAccess};
use pdb_quality::{
    quality_tp, BatchQuality, SharedEvaluation, TopKQuery, WeightedQuery, XTupleMutation,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Tolerance of a batch-served quality score against an independent full
/// PSR + TP run.
const TOLERANCE: f64 = 1e-8;

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.05f64..1.0), 1..4), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 2..8).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

/// An abstract query drawn as (semantics selector, k selector, weight);
/// `k` is resolved against the database size so the set covers `kᵢ = n`
/// and `kᵢ > n` alongside small prefixes.
fn query_set() -> impl Strategy<Value = Vec<(u8, usize, f64)>> {
    vec((0u8..3, 0usize..12, 0.0f64..3.0), 1..6)
}

fn resolve_queries(db: &RankedDatabase, raw: &[(u8, usize, f64)]) -> Vec<WeightedQuery> {
    let n = db.len();
    raw.iter()
        .map(|&(kind, k_sel, weight)| {
            // k ranges over 1..=n+2: prefixes, the full matrix and beyond.
            let k = 1 + k_sel % (n + 2);
            let query = match kind {
                0 => TopKQuery::PTk { k, threshold: 0.1 },
                1 => TopKQuery::UKRanks { k },
                _ => TopKQuery::GlobalTopk { k },
            };
            WeightedQuery::weighted(query, weight)
        })
        .collect()
}

/// Every registered query's shared-matrix service must match what it
/// would get from its own full PSR run.
fn assert_batch_matches_independent(db: &RankedDatabase, specs: &[WeightedQuery], ctx: &str) {
    let batch = BatchQuality::new(db, specs.to_vec()).unwrap();
    let qualities = batch.quality_vector();
    let answers = batch.answers().unwrap();
    let mut aggregate = 0.0;
    for (q, spec) in specs.iter().enumerate() {
        let k = spec.query.k();
        // Quality: independent full PSR + TP run, tolerance 1e-8.
        let independent = quality_tp(db, k).unwrap();
        assert!(
            (qualities[q] - independent).abs() < TOLERANCE,
            "{ctx}: query {q} quality {} vs independent {independent}",
            qualities[q]
        );
        aggregate += spec.weight * independent;
        // Answers: identical to an independent evaluation.
        let independent_answer = spec.query.evaluate(db).unwrap();
        assert_eq!(answers[q], independent_answer, "{ctx}: query {q} answer");
        // Rank probabilities: the prefix property is bit-for-bit.
        let rp = rank_probabilities(db, k).unwrap();
        let ranks = batch.evaluation().ranks(q);
        for pos in 0..db.len() {
            assert_eq!(ranks.top_k_prob(pos), rp.top_k_prob(pos), "{ctx}: q {q} pos {pos}");
            for h in 1..=k {
                assert_eq!(
                    ranks.rank_prob(pos, h),
                    rp.rank_prob(pos, h),
                    "{ctx}: q {q} pos {pos} h {h}"
                );
            }
        }
    }
    assert!(
        (batch.aggregate_quality() - aggregate).abs() < TOLERANCE,
        "{ctx}: aggregate {} vs independent {aggregate}",
        batch.aggregate_quality()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_matches_independent_runs((db, raw) in (db(), query_set())) {
        let specs = resolve_queries(&db, &raw);
        assert_batch_matches_independent(&db, &specs, "fresh batch");
    }

    #[test]
    fn single_query_batch_matches_shared_evaluation(
        db in db(),
        k_sel in 0usize..12,
        threshold in 0.01f64..0.9,
    ) {
        // The degenerate one-query batch must collapse to exactly what
        // SharedEvaluation produces (including k = n and k > n).
        let k = 1 + k_sel % (db.len() + 2);
        let specs = vec![WeightedQuery::new(TopKQuery::PTk { k, threshold })];
        assert_batch_matches_independent(&db, &specs, "single-query batch");

        let batch = BatchQuality::new(&db, specs).unwrap();
        let shared = SharedEvaluation::new(&db, k).unwrap();
        prop_assert!((batch.quality_vector()[0] - shared.quality()).abs() < TOLERANCE);
        prop_assert_eq!(
            batch.evaluation().ranks(0).top_k_probs(),
            shared.rank_probabilities().top_k_probs()
        );
    }

    #[test]
    fn collapsed_batch_still_matches_independent_runs(
        (db, raw) in (db(), query_set()),
        x_sel in any::<usize>(),
        alt_sel in any::<usize>(),
    ) {
        // After a delta-patched probe outcome, every query must still be
        // served as if freshly evaluated on the mutated database.
        let specs = resolve_queries(&db, &raw);
        let queries: Vec<TopKQuery> = specs.iter().map(|s| s.query).collect();
        let batch = BatchEvaluation::new(&db, queries.clone()).unwrap();
        let l = x_sel % db.num_x_tuples();
        let members = &db.x_tuple(l).members;
        let keep_pos = members[alt_sel % members.len()];
        let (next, _stats) = batch
            .apply_collapse(l, &XTupleMutation::CollapseToAlternative { keep_pos })
            .unwrap();
        let mutated = next.database();
        for (q, query) in queries.iter().enumerate() {
            let independent = rank_probabilities(mutated, query.k()).unwrap();
            let ranks = next.ranks(q);
            for pos in 0..mutated.len() {
                for h in 1..=query.k() {
                    let got = ranks.rank_prob(pos, h);
                    let want = independent.rank_prob(pos, h);
                    prop_assert!(
                        (got - want).abs() < TOLERANCE,
                        "q {} pos {} h {}: {} vs {}", q, pos, h, got, want
                    );
                }
            }
        }
    }
}

#[test]
fn duplicate_and_equal_k_queries_share_one_snapshot() {
    let db = RankedDatabase::from_scored_x_tuples(&[
        vec![(21.0, 0.6), (32.0, 0.4)],
        vec![(30.0, 0.7), (22.0, 0.3)],
        vec![(25.0, 0.4), (27.0, 0.6)],
        vec![(26.0, 1.0)],
    ])
    .unwrap();
    let n = db.len();
    // Three queries at the same k, plus k = n and k = n + 2.
    let specs = vec![
        WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 }),
        WeightedQuery::weighted(TopKQuery::UKRanks { k: 2 }, 2.0),
        WeightedQuery::weighted(TopKQuery::GlobalTopk { k: 2 }, 0.5),
        WeightedQuery::new(TopKQuery::PTk { k: n, threshold: 0.1 }),
        WeightedQuery::new(TopKQuery::GlobalTopk { k: n + 2 }),
    ];
    let batch = BatchQuality::new(&db, specs.clone()).unwrap();
    // One snapshot serves all three k = 2 queries; k_max = n + 2.
    assert_eq!(batch.evaluation().plan().snapshot_ks(), &[2, n]);
    assert_eq!(batch.evaluation().k_max(), n + 2);
    assert_batch_matches_independent(&db, &specs, "duplicate-k batch");
}
