//! Property-based tests of the PWS-quality algorithms.

use pdb_core::RankedDatabase;
use pdb_quality::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..50.0, 0.05f64..1.0), 1..4), 0.2f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 1..7).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PW, PWR and TP agree; the pw-result distribution is a distribution;
    /// the quality lies in [-log2(#results), 0].
    #[test]
    fn algorithms_agree_and_bounds_hold(db in db(), k in 1usize..5) {
        let dist = pwr_result_distribution(&db, k).unwrap();
        let pw = quality_pw(&db, k).unwrap();
        let pwr = quality_pwr(&db, k).unwrap();
        let tp = quality_tp(&db, k).unwrap();
        prop_assert!((pw - pwr).abs() < 1e-8);
        prop_assert!((pw - tp).abs() < 1e-8);
        prop_assert!((dist.total_prob() - 1.0).abs() < 1e-8);
        prop_assert!(pw <= 1e-9);
        prop_assert!(pw >= -(dist.len() as f64).log2() - 1e-9);
        // The bounded PWR either completes with the same value or gives up.
        match quality_pwr_bounded(&db, k, dist.len() as u64).unwrap() {
            Some(q) => prop_assert!((q - pwr).abs() < 1e-9),
            None => prop_assert!(false, "budget equal to the result count must suffice"),
        }
        prop_assert!(quality_pwr_bounded(&db, k, 0).unwrap().is_none() || dist.is_empty());
    }

    /// Collapsing an uncertain x-tuple to one of its alternatives never
    /// creates new pw-results: the cleaned database's quality is bounded
    /// below by... in general cleaning a *specific* outcome may not improve
    /// the score, but the expectation over outcomes does (Theorem 2).  Here
    /// we check the expectation directly against the mixture of collapsed
    /// databases.
    #[test]
    fn expected_quality_over_collapse_outcomes_never_decreases(db in db(), k in 1usize..4) {
        let before = quality_tp(&db, k).unwrap();
        for l in 0..db.num_x_tuples() {
            let info = db.x_tuple(l);
            let mut expectation = 0.0;
            let mut mass = 0.0;
            for &pos in &info.members.clone() {
                let p = db.tuple(pos).prob;
                if p <= 0.0 {
                    continue;
                }
                let cleaned = db.collapse_x_tuple(l, pos).unwrap();
                expectation += p * quality_tp(&cleaned, k).unwrap();
                mass += p;
            }
            let null = info.null_prob();
            if null > 1e-9 {
                if let Ok(cleaned) = db.collapse_x_tuple_to_null(l) {
                    expectation += null * quality_tp(&cleaned, k).unwrap();
                    mass += null;
                } else {
                    // Collapsing the only x-tuple to null empties the
                    // database: a certain (empty) answer with quality 0.
                    expectation += null * 0.0;
                    mass += null;
                }
            }
            prop_assume!(mass > 0.9);
            prop_assert!(
                expectation + 1e-9 >= before,
                "x-tuple {}: expected quality {} after cleaning vs {} before",
                l,
                expectation,
                before
            );
        }
    }

    /// The quality breakdown sums to the score and every x-tuple
    /// contribution is non-positive.
    #[test]
    fn breakdown_is_a_non_positive_decomposition(db in db(), k in 1usize..5) {
        let shared = SharedEvaluation::new(&db, k).unwrap();
        let b = shared.quality_breakdown();
        let sum: f64 = b.x_tuple_contribution.iter().sum();
        prop_assert!((sum - shared.quality()).abs() < 1e-9);
        for &g in &b.x_tuple_contribution {
            prop_assert!(g <= 1e-9);
        }
    }
}
