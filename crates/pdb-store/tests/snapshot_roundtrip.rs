//! Property suite of the binary snapshot format.
//!
//! Two promises are pinned here:
//!
//! * **bit-exact round trips** — for randomized databases (degenerate
//!   weights, zero-probability alternatives, single-member x-tuples,
//!   duplicate scores, sub-unit masses), `decode(encode(db))` reproduces
//!   every score and probability under `f64::to_bits`, every id, key and
//!   membership list — not merely values within a tolerance;
//! * **corruption never panics** — flipping any single byte anywhere in
//!   an encoded snapshot (header, keys, columns, checksum trailer) and
//!   truncating at any length yields a clean [`StoreError`], never a
//!   panic or a silently wrong database.

use pdb_core::RankedDatabase;
use pdb_store::{Snapshot, StoreError};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::Path;

/// A random x-tuple: 1..5 alternatives, mass scaled into (0, 1], with a
/// chance of degenerate (zero) weights surviving the scaling.
fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((-1e6f64..1e6, 0.0f64..1.0), 1..5), 0.05f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            // All-zero weights: a fully degenerate x-tuple (every
            // alternative has probability 0, null mass 1) is valid and
            // must round-trip too.
            alts.into_iter().map(|(s, _)| (s, 0.0)).collect()
        } else {
            alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
        }
    })
}

fn db() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple(), 1..10).prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).unwrap())
}

/// Field-by-field bit-exact equality (PartialEq would accept `0.0 == -0.0`
/// and reject nothing more; the format promises stronger).
fn assert_bit_exact(a: &RankedDatabase, b: &RankedDatabase) {
    assert_eq!(a.len(), b.len(), "tuple count");
    assert_eq!(a.num_x_tuples(), b.num_x_tuples(), "x-tuple count");
    for pos in 0..a.len() {
        let (x, y) = (a.tuple(pos), b.tuple(pos));
        assert_eq!(x.id, y.id, "id at {pos}");
        assert_eq!(x.x_index, y.x_index, "x-index at {pos}");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits at {pos}");
        assert_eq!(x.prob.to_bits(), y.prob.to_bits(), "prob bits at {pos}");
    }
    for l in 0..a.num_x_tuples() {
        assert_eq!(a.x_tuple(l).key, b.x_tuple(l).key, "key of {l}");
        assert_eq!(a.x_tuple(l).members, b.x_tuple(l).members, "members of {l}");
        assert_eq!(
            a.x_tuple(l).total_mass.to_bits(),
            b.x_tuple(l).total_mass.to_bits(),
            "mass bits of {l}"
        );
        for &pos in &a.x_tuple(l).members {
            assert_eq!(
                a.higher_mass_within(pos).to_bits(),
                b.higher_mass_within(pos).to_bits(),
                "prefix mass bits at {pos}"
            );
        }
    }
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random databases round-trip bit-exactly through encode/decode.
    #[test]
    fn random_databases_round_trip_bit_exactly(db in db()) {
        let bytes = Snapshot::encode(&db).expect("encoding fits the format");
        prop_assert!(Snapshot::is_snapshot(&bytes));
        let back = Snapshot::decode(&bytes, Path::new("mem")).unwrap();
        assert_bit_exact(&db, &back);
    }

    /// Flipping one random byte (any position, any bit pattern) is a
    /// clean error.
    #[test]
    fn random_byte_flips_are_clean_errors(
        db in db(),
        pos in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = Snapshot::encode(&db).expect("encoding fits the format");
        let at = pos.index(bytes.len());
        bytes[at] ^= mask;
        match Snapshot::decode(&bytes, Path::new("mem")) {
            Err(
                StoreError::Corrupt { .. }
                | StoreError::BadMagic { .. }
                | StoreError::UnsupportedVersion { .. }
                | StoreError::Engine(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            // The one byte that may legitimately survive a flip is none:
            // the checksum covers every byte before it, and flipping the
            // trailer breaks the comparison itself.
            Ok(_) => prop_assert!(false, "flip at byte {at} (mask {mask:#04x}) went undetected"),
        }
    }

    /// Truncating the file at any random length is a clean error.
    #[test]
    fn random_truncations_are_clean_errors(db in db(), cut in any::<prop::sample::Index>()) {
        let bytes = Snapshot::encode(&db).expect("encoding fits the format");
        let at = cut.index(bytes.len()); // strictly shorter than the file
        prop_assert!(Snapshot::decode(&bytes[..at], Path::new("mem")).is_err());
    }
}

/// The exhaustive version of the flip property on a fixed small database:
/// every byte position, flipped, must fail to decode.
#[test]
fn every_single_byte_flip_is_detected() {
    let db = RankedDatabase::from_scored_x_tuples(&[
        vec![(21.0, 0.6), (32.0, 0.4)],
        vec![(30.0, 0.7), (22.0, 0.3)],
        vec![(25.0, 0.4), (27.0, 0.6)],
        vec![(26.0, 1.0)],
    ])
    .unwrap();
    let bytes = Snapshot::encode(&db).expect("encoding fits the format");
    for pos in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x01; // the subtlest corruption: one bit
        assert!(
            Snapshot::decode(&flipped, Path::new("mem")).is_err(),
            "single-bit flip at byte {pos} of {} went undetected",
            bytes.len()
        );
    }
}
