//! Recovery equivalence: a store-backed session replayed from its
//! write-ahead log must match the uninterrupted in-process session.
//!
//! The property suite drives randomized sessions (random inline
//! databases, query sets whose `k` routinely exceeds `n`, random
//! collapse / null / reweight / insert / remove sequences) twice: once
//! directly on a [`BatchQuality`] mirror, and once as journalled records
//! — collapses as the historical `ApplyProbe` kind, streaming membership
//! changes as the newer `ApplyMutation` kind, so both record kinds replay
//! in one log — in a store that is then dropped and reopened.  The recovered evaluation must
//! agree with the mirror — answers exactly, qualities at 1e-12 — even
//! when random garbage is appended to the log first (the torn tail a
//! crash mid-append leaves behind).

use pdb_core::RankedDatabase;
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_quality::{BatchQuality, WeightedQuery};
use pdb_store::{DatasetSpec, RecoveredState, Store, WalRecord};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TOL: f64 = 1e-12;

/// A fresh store directory per proptest case (cases run concurrently
/// across test threads).
fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("pdb-store-wal-recovery")
        .join(format!("case-{}-{id}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn build(spec: &DatasetSpec) -> pdb_core::Result<RankedDatabase> {
    match spec {
        DatasetSpec::Inline { x_tuples } => RankedDatabase::from_scored_x_tuples(x_tuples),
        other => panic!("this suite only journals inline datasets, got {other:?}"),
    }
}

/// One abstract probe step, resolved against the evolving database.
#[derive(Debug, Clone)]
struct Step {
    x_sel: usize,
    kind: u8,
    alt_sel: usize,
    weights: Vec<f64>,
}

fn step() -> impl Strategy<Value = Step> {
    (any::<usize>(), 0u8..5, any::<usize>(), vec(0.05f64..1.0, 6))
        .prop_map(|(x_sel, kind, alt_sel, weights)| Step { x_sel, kind, alt_sel, weights })
}

fn resolve(db: &RankedDatabase, s: &Step) -> Option<(usize, XTupleMutation)> {
    let m = db.num_x_tuples();
    let l = s.x_sel % m;
    let info = db.x_tuple(l);
    match s.kind {
        0 => {
            let keep_pos = info.members[s.alt_sel % info.members.len()];
            Some((l, XTupleMutation::CollapseToAlternative { keep_pos }))
        }
        1 if info.null_prob() > 1e-9 && m > 1 => Some((l, XTupleMutation::CollapseToNull)),
        1 => None,
        2 => {
            let raw: Vec<f64> = info
                .members
                .iter()
                .enumerate()
                .map(|(i, _)| s.weights[i % s.weights.len()])
                .collect();
            let total: f64 = raw.iter().sum();
            let target = 0.2 + 0.75 * s.weights[0];
            Some((
                l,
                XTupleMutation::Reweight {
                    probs: raw.iter().map(|w| w / total * target).collect(),
                },
            ))
        }
        3 => {
            // Insert: a fresh entity appended at x-index m.
            let count = 1 + s.alt_sel % 3;
            let raw: Vec<(f64, f64)> =
                (0..count).map(|i| (s.weights[i] * 100.0, s.weights[i + 3])).collect();
            let total: f64 = raw.iter().map(|&(_, p)| p).sum();
            let target = 0.2 + 0.75 * s.weights[0];
            let alternatives = raw.iter().map(|&(sc, p)| (sc, p / total * target)).collect();
            let key = format!("ins{}", s.x_sel % 89);
            Some((m, XTupleMutation::Insert { key, alternatives }))
        }
        4 if m > 1 => Some((l, XTupleMutation::Remove)),
        _ => None,
    }
}

fn x_tuple() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.05f64..1.0), 1..4), 0.1f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(s, w)| (s, w / total * mass)).collect()
    })
}

/// A query whose `k` may exceed the database size (k ≥ n is a planning
/// edge case the batch engine clamps internally).
fn query() -> impl Strategy<Value = WeightedQuery> {
    (1usize..30, 0u8..3, 0.05f64..0.9, 0.2f64..2.0).prop_map(|(k, kind, threshold, weight)| {
        let query = match kind {
            0 => TopKQuery::PTk { k, threshold },
            1 => TopKQuery::UKRanks { k },
            _ => TopKQuery::GlobalTopk { k },
        };
        WeightedQuery::weighted(query, weight)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Journal → drop → reopen reproduces the uninterrupted session,
    /// torn tail included.
    #[test]
    fn recovery_matches_the_uninterrupted_mirror(
        x_tuples in vec(x_tuple(), 2..7),
        queries in vec(query(), 1..4),
        steps in vec(step(), 0..5),
        garbage in vec(any::<u8>(), 0..48),
    ) {
        let dir = fresh_dir();
        let spec = DatasetSpec::Inline { x_tuples };
        let db = build(&spec).unwrap();

        // Uninterrupted in-process session.
        let mut mirror = BatchQuality::from_owned(db, queries.clone()).unwrap();

        // The same session, journalled record by record.
        {
            let (store, _) = Store::open(&dir, true, &build).unwrap();
            store.append(&WalRecord::CreateSession {
                session: 1,
                dataset: spec.clone(),
                probe_cost: 1,
                probe_success: 0.8,
            }).unwrap();
            for wq in &queries {
                store.append(&WalRecord::RegisterQuery {
                    session: 1,
                    query: wq.query,
                    weight: wq.weight,
                }).unwrap();
            }
            for s in &steps {
                let Some((l, mutation)) = resolve(mirror.database(), s) else { continue };
                mirror.apply_collapse_in_place(l, &mutation).unwrap();
                // Streaming membership changes journal as the newer
                // `ApplyMutation` record kind; collapses and reweights stay
                // on the historical `ApplyProbe` kind so one log carries
                // both and replay must treat them identically.
                let record = match &mutation {
                    XTupleMutation::Insert { .. } | XTupleMutation::Remove => {
                        WalRecord::ApplyMutation { session: 1, x_tuple: l, mutation }
                    }
                    _ => WalRecord::ApplyProbe { session: 1, x_tuple: l, mutation },
                };
                store.append(&record).unwrap();
            }
        }

        // Crash: random bytes torn onto the log tail.
        let wal = dir.join(pdb_store::WAL_FILE);
        if !garbage.is_empty() {
            let mut bytes = std::fs::read(&wal).unwrap();
            bytes.extend_from_slice(&garbage);
            std::fs::write(&wal, &bytes).unwrap();
        }

        // Recover and compare.
        let (_, recovery) = Store::open(&dir, true, &build).unwrap();
        prop_assert_eq!(recovery.sessions.len(), 1);
        let session = &recovery.sessions[0];
        prop_assert_eq!((recovery.truncated_bytes > 0) as usize, (!garbage.is_empty()) as usize);
        let RecoveredState::Live(recovered) = &session.state else {
            panic!("queries were registered; session must recover live");
        };
        prop_assert_eq!(recovered.database(), mirror.database());
        prop_assert!((recovered.aggregate_quality() - mirror.aggregate_quality()).abs() <= TOL);
        let (got_q, want_q) = (recovered.quality_vector(), mirror.quality_vector());
        for (q, (got, want)) in got_q.iter().zip(&want_q).enumerate() {
            prop_assert!((got - want).abs() <= TOL, "quality of query {}: {} vs {}", q, got, want);
        }
        prop_assert_eq!(recovered.answers().unwrap(), mirror.answers().unwrap());

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Registrations interleaved *between* probes: replay must re-plan at
/// each registration exactly like the live session did.
#[test]
fn interleaved_registrations_replay_exactly() {
    let dir = fresh_dir();
    let spec = DatasetSpec::Inline {
        x_tuples: vec![
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ],
    };
    let db = build(&spec).unwrap();
    let q1 = WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 });
    let q2 = WeightedQuery::weighted(TopKQuery::GlobalTopk { k: 9 }, 2.0); // k > n
    let probe = XTupleMutation::CollapseToAlternative { keep_pos: 2 };

    // Live: register q1, probe, register q2 (re-plans over the mutated
    // database), probe again.
    let mut mirror = BatchQuality::from_owned(db.clone(), vec![q1]).unwrap();
    mirror.apply_collapse_in_place(2, &probe).unwrap();
    let mut mirror = BatchQuality::from_owned(mirror.database().clone(), vec![q1, q2]).unwrap();
    let second = XTupleMutation::Reweight { probs: vec![0.3, 0.2] };
    mirror.apply_collapse_in_place(0, &second).unwrap();
    // A streaming arrival and departure ride the same log as the newer
    // `ApplyMutation` record kind.
    let arrival =
        XTupleMutation::Insert { key: "s9".into(), alternatives: vec![(28.5, 0.5), (23.0, 0.25)] };
    let appended_at = mirror.database().num_x_tuples();
    mirror.apply_collapse_in_place(appended_at, &arrival).unwrap();
    mirror.apply_collapse_in_place(1, &XTupleMutation::Remove).unwrap();

    let (store, _) = Store::open(&dir, true, &build).unwrap();
    for record in [
        WalRecord::CreateSession { session: 1, dataset: spec, probe_cost: 1, probe_success: 0.8 },
        WalRecord::RegisterQuery { session: 1, query: q1.query, weight: q1.weight },
        WalRecord::ApplyProbe { session: 1, x_tuple: 2, mutation: probe },
        WalRecord::RegisterQuery { session: 1, query: q2.query, weight: q2.weight },
        WalRecord::ApplyProbe { session: 1, x_tuple: 0, mutation: second },
        WalRecord::ApplyMutation { session: 1, x_tuple: appended_at, mutation: arrival },
        WalRecord::ApplyMutation { session: 1, x_tuple: 1, mutation: XTupleMutation::Remove },
    ] {
        store.append(&record).unwrap();
    }
    drop(store);

    let (_, recovery) = Store::open(&dir, true, &build).unwrap();
    let session = &recovery.sessions[0];
    assert_eq!(session.probes_replayed, 4);
    let RecoveredState::Live(recovered) = &session.state else { panic!("live session") };
    assert_eq!(recovered.database(), mirror.database());
    assert!((recovered.aggregate_quality() - mirror.aggregate_quality()).abs() <= TOL);
    assert_eq!(recovered.answers().unwrap(), mirror.answers().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}
