//! Which database a session evaluates — the durable, buildable dataset
//! description.
//!
//! [`DatasetSpec`] is pure data: it journals and serializes (it is both a
//! wire-protocol payload in `pdb-server` and a write-ahead-log payload
//! here), while *materializing* the database it describes is
//! `pdb_gen::spec::build_dataset` — the generators live above this crate,
//! so the spec type and the log that embeds it stay free of generator
//! dependencies.
//!
//! Every variant is deterministic: generated datasets come from
//! fixed-seed generators, inline databases carry their alternatives, and
//! snapshots are immutable files.  That is what makes a `create_session`
//! log record sufficient to rebuild a session's base database bit-for-bit
//! during recovery.

use serde::{Deserialize, Serialize};

/// A durable description of a probabilistic database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// The synthetic dataset family with approximately this many tuples.
    Synthetic {
        /// Total tuple count (10 alternatives per x-tuple).
        tuples: usize,
    },
    /// The MOV stand-in dataset with this many x-tuples.
    Mov {
        /// Number of (movie, viewer) x-tuples.
        x_tuples: usize,
    },
    /// The paper's running example `udb1` (Table I, 7 tuples).
    Udb1,
    /// An inline database: per x-tuple, its `(score, probability)`
    /// alternatives.
    Inline {
        /// `x_tuples[l]` lists x-tuple `l`'s alternatives.
        x_tuples: Vec<Vec<(f64, f64)>>,
    },
    /// A binary snapshot file (see [`crate::Snapshot`]).
    Snapshot {
        /// Path of the snapshot file.
        path: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        for spec in [
            DatasetSpec::Udb1,
            DatasetSpec::Synthetic { tuples: 100 },
            DatasetSpec::Mov { x_tuples: 20 },
            DatasetSpec::Inline { x_tuples: vec![vec![(1.0, 0.5), (2.0, 0.5)], vec![(3.0, 1.0)]] },
            DatasetSpec::Snapshot { path: "/tmp/db.pdbs".to_string() },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: DatasetSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "via {json}");
        }
    }
}
