//! Checked little-endian readers shared by the WAL and snapshot
//! decoders.
//!
//! Both formats parse length-prefixed binary data that may be torn or
//! corrupt; these helpers return `None` on a short slice instead of
//! panicking, so every decode path stays a clean `StoreError` (the
//! crate's contract: corruption is an error with a path and offset,
//! never a panic).

/// The first four bytes of `bytes` as a little-endian `u32`.
pub(crate) fn le_u32(bytes: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?))
}

/// The first eight bytes of `bytes` as a little-endian `u64`.
pub(crate) fn le_u64(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_prefixes_and_rejects_short_slices() {
        assert_eq!(le_u32(&[1, 0, 0, 0, 99]), Some(1));
        assert_eq!(le_u64(&[2, 0, 0, 0, 0, 0, 0, 0]), Some(2));
        assert_eq!(le_u32(&[1, 0, 0]), None);
        assert_eq!(le_u64(&[1, 2, 3, 4, 5, 6, 7]), None);
    }
}
