//! A self-contained XXH64 implementation.
//!
//! The snapshot and log formats need a fast 64-bit integrity check; with
//! no crates.io access the standard XXH64 algorithm is hand-rolled here
//! (the same primes, lane mixing and avalanche steps as the reference
//! implementation, so the emitted values match `xxhash` exactly and the
//! on-disk format stays compatible with standard tooling).

const PRIME1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(bytes: &[u8]) -> u64 {
    // pdb-analyze: allow(panic-path): every caller slices exactly 8 bytes off the lane loop, so the conversion is statically infallible
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(bytes: &[u8]) -> u32 {
    // pdb-analyze: allow(panic-path): the tail loop only calls this with at least 4 bytes remaining
    u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice"))
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME2)).rotate_left(31).wrapping_mul(PRIME1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(PRIME1).wrapping_add(PRIME4)
}

/// XXH64 of `data` with the given seed.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let mut input = data;
    let mut h = if input.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        while input.len() >= 32 {
            v1 = round(v1, read_u64(&input[0..8]));
            v2 = round(v2, read_u64(&input[8..16]));
            v3 = round(v3, read_u64(&input[16..24]));
            v4 = round(v4, read_u64(&input[24..32]));
            input = &input[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME5)
    };
    h = h.wrapping_add(data.len() as u64);

    while input.len() >= 8 {
        h ^= round(0, read_u64(input));
        h = h.rotate_left(27).wrapping_mul(PRIME1).wrapping_add(PRIME4);
        input = &input[8..];
    }
    if input.len() >= 4 {
        h ^= u64::from(read_u32(input)).wrapping_mul(PRIME1);
        h = h.rotate_left(23).wrapping_mul(PRIME2).wrapping_add(PRIME3);
        input = &input[4..];
    }
    for &byte in input {
        h ^= u64::from(byte).wrapping_mul(PRIME5);
        h = h.rotate_left(11).wrapping_mul(PRIME1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors of the canonical XXH64 implementation.
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn every_byte_position_affects_the_hash() {
        // 100 bytes exercises the 32-byte lane loop, the 8/4-byte tail
        // reads and the final byte loop.
        let base: Vec<u8> = (0..100u8).collect();
        let reference = xxh64(&base, 0);
        assert_eq!(xxh64(&base, 0), reference, "deterministic");
        for pos in 0..base.len() {
            let mut flipped = base.clone();
            flipped[pos] ^= 0x01;
            assert_ne!(xxh64(&flipped, 0), reference, "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn seed_and_length_separate_hashes() {
        assert_ne!(xxh64(b"pdb-store", 0), xxh64(b"pdb-store", 1));
        assert_ne!(xxh64(&[0u8; 31], 0), xxh64(&[0u8; 32], 0));
    }
}
