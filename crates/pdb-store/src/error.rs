//! Error type of the persistence layer.
//!
//! Every failure mode a store can hit — I/O, a corrupt snapshot, an
//! unsupported format version, or an engine error while replaying a log —
//! maps onto one [`StoreError`] variant.  Corruption is always reported as
//! a clean error with the offending path and byte offset, never as a
//! panic: the corruption test suite flips single bytes anywhere in a
//! snapshot and asserts exactly that.

use pdb_core::DbError;
use std::fmt;
use std::path::{Path, PathBuf};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = StoreError> = std::result::Result<T, E>;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing (`"reading"`, `"writing"`, ...).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The file does not start with the expected magic bytes — it is not a
    /// snapshot / log of this store at all.
    BadMagic {
        /// The offending file.
        path: PathBuf,
        /// Human-readable name of the expected format (`"snapshot"`,
        /// `"write-ahead log"`).
        expected: &'static str,
    },
    /// The file carries a format version this build cannot read.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found in the header.
        version: u32,
        /// The newest version this build understands.
        supported: u32,
    },
    /// The file's bytes are inconsistent — checksum mismatch, impossible
    /// length field, truncated body.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset at which the inconsistency was detected.
        offset: usize,
        /// What exactly was inconsistent.
        reason: String,
    },
    /// Replaying the log hit an engine error (e.g. a journalled mutation
    /// no longer applies to the journalled database) — the log and the
    /// data it references disagree.
    Replay {
        /// Index of the offending record within the log.
        record: u64,
        /// The engine error the replay hit.
        source: DbError,
    },
    /// An engine error outside replay (building a dataset, validating a
    /// decoded database).
    Engine(DbError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "{op} {} failed: {message}", path.display())
            }
            StoreError::BadMagic { path, expected } => {
                write!(f, "{} is not a {expected} (magic bytes mismatch)", path.display())
            }
            StoreError::UnsupportedVersion { path, version, supported } => write!(
                f,
                "{} has format version {version}, but this build supports at most {supported}",
                path.display()
            ),
            StoreError::Corrupt { path, offset, reason } => {
                write!(f, "{} is corrupt at byte {offset}: {reason}", path.display())
            }
            StoreError::Replay { record, source } => {
                write!(f, "replaying log record #{record} failed: {source}")
            }
            StoreError::Engine(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<DbError> for StoreError {
    fn from(err: DbError) -> Self {
        StoreError::Engine(err)
    }
}

impl From<StoreError> for DbError {
    fn from(err: StoreError) -> Self {
        match err {
            StoreError::Engine(inner) => inner,
            other => DbError::invalid_parameter(other.to_string()),
        }
    }
}

impl StoreError {
    /// Wrap an `std::io::Error` with the operation and path it hit.
    pub fn io(op: &'static str, path: &Path, err: std::io::Error) -> Self {
        StoreError::Io { op, path: path.to_path_buf(), message: err.to_string() }
    }

    /// Build a [`StoreError::Corrupt`] for `path` at `offset`.
    pub fn corrupt(path: &Path, offset: usize, reason: impl Into<String>) -> Self {
        StoreError::Corrupt { path: path.to_path_buf(), offset, reason: reason.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let p = Path::new("/tmp/x.pdbs");
        let e = StoreError::io("reading", p, std::io::Error::other("x"));
        assert!(e.to_string().contains("reading"));
        assert!(e.to_string().contains("x.pdbs"));

        let e = StoreError::BadMagic { path: p.to_path_buf(), expected: "snapshot" };
        assert!(e.to_string().contains("snapshot"));

        let e = StoreError::UnsupportedVersion { path: p.to_path_buf(), version: 9, supported: 1 };
        assert!(e.to_string().contains('9'));

        let e = StoreError::corrupt(p, 42, "checksum mismatch");
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("checksum"));

        let e = StoreError::Replay { record: 7, source: DbError::EmptyDatabase };
        assert!(e.to_string().contains("#7"));

        let e = StoreError::Engine(DbError::EmptyDatabase);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn converts_to_and_from_db_error() {
        let store: StoreError = DbError::EmptyDatabase.into();
        assert_eq!(store, StoreError::Engine(DbError::EmptyDatabase));
        // Engine errors unwrap losslessly; store-specific errors keep their
        // message.
        let back: DbError = store.into();
        assert_eq!(back, DbError::EmptyDatabase);
        let msg: DbError = StoreError::corrupt(Path::new("f"), 0, "boom").into();
        assert!(msg.to_string().contains("boom"));
    }
}
