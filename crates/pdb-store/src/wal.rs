//! The probe-outcome write-ahead log.
//!
//! A cleaning session's state is the deterministic product of its
//! lifecycle events: the dataset it opened on, the queries it registered,
//! and every probe outcome folded in (each probe is exactly one
//! [`XTupleMutation`] — the incremental structure the paper's cleaning
//! model gives us for free).  The WAL journals those events as
//! append-only records, fsync'd per record, so a crash loses at most the
//! record being written — and that torn tail is *tolerated*, not fatal:
//! replay stops at the first corrupt record and truncates the file there.
//!
//! ## File layout
//!
//! | Bytes | Field |
//! |-------|-------|
//! | 4     | magic `PDBW` |
//! | 4     | format version (`u32`, currently 1) |
//! | per record: | |
//! | 4     | payload length (`u32`) |
//! | 8     | XXH64 of the payload |
//! | var   | payload: one [`WalRecord`] as compact JSON |
//!
//! JSON payloads reuse the workspace's serde implementations, so the
//! types journalled here ([`DatasetSpec`], `TopKQuery`,
//! [`XTupleMutation`], `WeightedQuery`) are exactly the ones that cross
//! the server's wire protocol — a record is the request that caused it.
//!
//! ## Torn-tail semantics
//!
//! Only the *tail* is forgiving.  A file that does not start with the
//! magic/version header is rejected outright (truncating it could
//! destroy a file that was never a WAL), and a version this build does
//! not know is a hard error.  Past the header, the first record with a
//! short header, an impossible length, a checksum mismatch or an
//! unparseable payload ends the replay; [`Wal::open`] truncates the file
//! at that offset so subsequent appends continue from a clean boundary.

use crate::error::{Result, StoreError};
use crate::hash::xxh64;
use crate::spec::DatasetSpec;
use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_quality::WeightedQuery;
use serde::{Deserialize, Serialize};
use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"PDBW";

/// Newest WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;

/// Seed of the per-record XXH64 integrity check.
const RECORD_SEED: u64 = 0x7064_6277; // "pdbw"

/// Byte length of the file header (magic + version).
const WAL_HEADER_LEN: usize = 8;

/// Byte length of a record header (payload length + checksum).
const RECORD_HEADER_LEN: usize = 12;

/// Upper bound on a single record's payload.  Real records are a few
/// hundred bytes (inline datasets a few megabytes); anything larger is a
/// corrupt length field and must not drive an allocation.
const MAX_RECORD_LEN: usize = 256 << 20;

/// One journalled session-lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A session was created over `dataset`.
    CreateSession {
        /// The session id the server assigned.
        session: u64,
        /// The (deterministic) dataset the session evaluates.
        dataset: DatasetSpec,
        /// Budget units one probe costs.
        probe_cost: u64,
        /// Probability that one probe succeeds.
        probe_success: f64,
    },
    /// A weighted query was registered.
    RegisterQuery {
        /// Target session.
        session: u64,
        /// The registered query.
        query: TopKQuery,
        /// Its weight in the session's aggregate quality.
        weight: f64,
    },
    /// One observed probe outcome was folded into the session.  The
    /// mutation is journalled in its *resolved* form (the exact
    /// [`XTupleMutation`] the engine applied), so replay is a pure delta
    /// pass with no re-derivation.
    ApplyProbe {
        /// Target session.
        session: u64,
        /// The probed x-tuple (index into the session's database at the
        /// time of the probe).
        x_tuple: usize,
        /// What the probe revealed.
        mutation: XTupleMutation,
    },
    /// One mutation — a probe outcome or a streaming insert/remove — was
    /// folded into the session via the `apply_mutation` verb (or its
    /// `apply_probe` alias; both journal this record kind).  As with
    /// [`ApplyProbe`](WalRecord::ApplyProbe), the mutation is journalled
    /// in its *resolved* form: for an [`XTupleMutation::Insert`],
    /// `x_tuple` is the pre-insert x-tuple count the server resolved the
    /// append-only target to, so replay re-applies it to the identical
    /// database version.
    ApplyMutation {
        /// Target session.
        session: u64,
        /// The resolved target x-tuple index.
        x_tuple: usize,
        /// The mutation that was applied.
        mutation: XTupleMutation,
    },
    /// The session was discarded.
    DropSession {
        /// The dropped session.
        session: u64,
    },
    /// The session's full state as of this point in the log lives in a
    /// snapshot file; replay loads the snapshot and ignores every earlier
    /// record of this session.
    Checkpoint {
        /// Target session.
        session: u64,
        /// File name of the snapshot (relative to the store directory).
        snapshot: String,
        /// Budget units one probe costs.
        probe_cost: u64,
        /// Probability that one probe succeeds.
        probe_success: f64,
        /// The session's registered queries, in registration order.
        specs: Vec<WeightedQuery>,
        /// Probes applied to the session before the checkpoint (so the
        /// recovered session's counters survive compaction).
        probes: u64,
    },
}

impl WalRecord {
    /// The session this record belongs to.
    pub fn session(&self) -> u64 {
        match *self {
            WalRecord::CreateSession { session, .. }
            | WalRecord::RegisterQuery { session, .. }
            | WalRecord::ApplyProbe { session, .. }
            | WalRecord::ApplyMutation { session, .. }
            | WalRecord::DropSession { session }
            | WalRecord::Checkpoint { session, .. } => session,
        }
    }
}

/// What [`Wal::open`] found in an existing log file.
#[derive(Debug)]
pub struct WalReplay {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail that were truncated away (0 for a
    /// cleanly closed log).
    pub truncated_bytes: u64,
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: fs::File,
    path: PathBuf,
    sync: bool,
    records: u64,
    /// Length of the valid prefix (header + every fully appended
    /// record): the offset a failed partial append is rolled back to.
    len: u64,
    /// Set when the handle can no longer be trusted to point at the log
    /// on disk (a compaction rewrite replaced the file but reopening it
    /// failed): the log fail-stops instead of acknowledging appends into
    /// an unlinked ghost inode a restart would never see.
    poisoned: Option<String>,
}

/// Frame one record: length + checksum + JSON payload.  Rejects payloads
/// over [`MAX_RECORD_LEN`] at *write* time — the read side treats an
/// impossible length as a torn tail, so an oversized record that got
/// acknowledged would silently truncate itself and everything after it
/// on recovery.
fn frame(record: &WalRecord) -> Result<Vec<u8>> {
    let payload = serde_json::to_string(record).map_err(|e| StoreError::Corrupt {
        path: PathBuf::new(),
        offset: 0,
        reason: format!("encoding a WAL record failed: {e}"),
    })?;
    let payload = payload.as_bytes();
    let len = record_len_u32(payload.len())?;
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&xxh64(payload, RECORD_SEED).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validate a payload length for the frame header's `u32` length field.
/// The [`MAX_RECORD_LEN`] policy bound and the representability bound
/// are checked separately so the framing stays safe even if the policy
/// constant is ever raised past `u32::MAX`.
fn record_len_u32(len: usize) -> Result<u32> {
    if len > MAX_RECORD_LEN {
        return Err(StoreError::Corrupt {
            path: PathBuf::new(),
            offset: 0,
            reason: format!(
                "record payload is {len} bytes, above the {MAX_RECORD_LEN}-byte limit \
                 (use a snapshot instead of an inline dataset of this size)"
            ),
        });
    }
    u32::try_from(len).map_err(|_| StoreError::Corrupt {
        path: PathBuf::new(),
        offset: 0,
        reason: format!("record payload is {len} bytes, not representable in the u32 length field"),
    })
}

/// Scan `bytes` (a full WAL file) into records.  Returns the records and
/// the length of the valid prefix; everything after it is a torn tail.
/// Header problems (wrong magic, unknown version) are hard errors.
pub(crate) fn scan(bytes: &[u8], path: &Path) -> Result<(Vec<WalRecord>, usize)> {
    if bytes.is_empty() {
        return Ok((Vec::new(), 0));
    }
    if bytes.len() < 4 || bytes[..4] != WAL_MAGIC {
        return Err(StoreError::BadMagic { path: path.to_path_buf(), expected: "write-ahead log" });
    }
    if bytes.len() < WAL_HEADER_LEN {
        // Magic present but the version was torn off: an interrupted
        // creation of a brand-new log.  Treat the whole file as tail.
        return Ok((Vec::new(), 0));
    }
    let Some(version) = crate::le::le_u32(&bytes[4..]) else {
        // Statically unreachable (the header-length check above ran), but
        // a torn header degrades to "whole file is tail" rather than a
        // panic if the constants ever drift.
        return Ok((Vec::new(), 0));
    };
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
            supported: WAL_VERSION,
        });
    }

    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    loop {
        let remaining = &bytes[offset..];
        if remaining.len() < RECORD_HEADER_LEN {
            break; // torn record header (or clean EOF)
        }
        let (Some(len), Some(stored)) =
            (crate::le::le_u32(remaining), crate::le::le_u64(&remaining[4..]))
        else {
            break; // torn record header (guarded by the length check above)
        };
        let len = len as usize;
        if len == 0 || len > MAX_RECORD_LEN || remaining.len() - RECORD_HEADER_LEN < len {
            break; // impossible length or torn payload
        }
        let payload = &remaining[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if xxh64(payload, RECORD_SEED) != stored {
            break; // corrupt payload
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = serde_json::from_str::<WalRecord>(text) else {
            break; // checksum-valid but unparseable: treat as tail
        };
        records.push(record);
        offset += RECORD_HEADER_LEN + len;
    }
    Ok((records, offset))
}

/// Scan the log file at `path` into its valid records (compaction's read
/// side; callers must hold the log lock so the file is not appended to
/// mid-read).
pub(crate) fn scan_file(path: &Path) -> Result<Vec<WalRecord>> {
    let bytes = fs::read(path).map_err(|e| StoreError::io("reading", path, e))?;
    scan(&bytes, path).map(|(records, _)| records)
}

impl Wal {
    /// Open (or create) the log at `path`, replaying every valid record
    /// and truncating a torn tail so appends continue from a clean
    /// boundary.  With `sync`, every append is fsync'd before returning.
    pub fn open(path: &Path, sync: bool) -> Result<(Self, WalReplay)> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(StoreError::io("reading", path, err)),
        };
        let (records, valid_len) = scan(&bytes, path)?;
        let truncated_bytes = (bytes.len() - valid_len) as u64;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("opening", path, e))?;
        if valid_len < WAL_HEADER_LEN {
            file.set_len(0).map_err(|e| StoreError::io("truncating", path, e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| StoreError::io("seeking", path, e))?;
            file.write_all(&WAL_MAGIC).map_err(|e| StoreError::io("writing", path, e))?;
            file.write_all(&WAL_VERSION.to_le_bytes())
                .map_err(|e| StoreError::io("writing", path, e))?;
            file.sync_data().map_err(|e| StoreError::io("syncing", path, e))?;
            crate::snapshot::sync_parent_dir(path)?;
        } else {
            file.set_len(valid_len as u64).map_err(|e| StoreError::io("truncating", path, e))?;
            file.seek(SeekFrom::End(0)).map_err(|e| StoreError::io("seeking", path, e))?;
            if truncated_bytes > 0 {
                file.sync_data().map_err(|e| StoreError::io("syncing", path, e))?;
            }
        }

        let records_count = records.len() as u64;
        let len = valid_len.max(WAL_HEADER_LEN) as u64;
        let wal = Self {
            file,
            path: path.to_path_buf(),
            sync,
            records: records_count,
            len,
            poisoned: None,
        };
        Ok((wal, WalReplay { records, truncated_bytes }))
    }

    /// Append one record (write + per-record fsync when the log was
    /// opened with `sync`).
    ///
    /// A *failed* write is rolled back: the file is truncated to the last
    /// fully appended record, so a partial frame (e.g. `ENOSPC` mid-write)
    /// never sits in the middle of the log where it would make every
    /// later — successfully acknowledged — record unreachable as a "torn
    /// tail" on recovery.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        if let Some(why) = &self.poisoned {
            return Err(StoreError::io(
                "appending to",
                &self.path,
                std::io::Error::other(format!("log handle lost: {why}")),
            ));
        }
        let framed = frame(record)?;
        if let Err(err) = self.file.write_all(&framed) {
            let rolled_back =
                self.file.set_len(self.len).is_ok() && self.file.seek(SeekFrom::End(0)).is_ok();
            return Err(StoreError::io(
                if rolled_back { "appending to" } else { "appending to (roll-back failed!)" },
                &self.path,
                err,
            ));
        }
        // The frame is fully written, so the valid prefix now includes it
        // — even if the fsync below fails.  Keeping `len` in step matters:
        // rolling a *later* failed append back to a stale `len` would
        // truncate this (complete, possibly acknowledged) frame.
        self.len += framed.len() as u64;
        self.records += 1;
        // A failed fsync is *not* rolled back: the frame is complete and
        // valid, so it either survives the crash (matching the state the
        // caller already applied) or tears off cleanly.
        if self.sync {
            self.file.sync_data().map_err(|e| StoreError::io("syncing", &self.path, e))?;
        }
        Ok(())
    }

    /// A duplicated handle to the log file, so the group-commit flusher
    /// can fsync *outside* the log lock: `sync_data` on the clone covers
    /// every frame fully written through the primary handle before the
    /// clone was taken, and appenders keep writing while the fsync runs
    /// — that overlap is where the next batch comes from.  (A compaction
    /// rewrite may swap the file out from under an in-flight clone; the
    /// rewrite itself made every surviving record durable, so fsyncing
    /// the replaced inode is harmless.)
    pub(crate) fn sync_handle(&self) -> Result<fs::File> {
        self.file
            .try_clone()
            .map_err(|e| StoreError::io("cloning the log handle of", &self.path, e))
    }

    /// Records in the log (valid records found at open + appends since).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replace the log's contents with `records` (compaction):
    /// the new log is framed in memory, written to a temporary file,
    /// fsync'd and renamed over the old one, then reopened for appends.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> Result<()> {
        let mut bytes = Vec::with_capacity(WAL_HEADER_LEN + 64 * records.len());
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        for record in records {
            bytes.extend_from_slice(&frame(record)?);
        }
        crate::snapshot::write_atomic(&self.path, &bytes)?;
        // The rename already replaced the file on disk: the old handle
        // now points at an unlinked inode.  If reopening the new file
        // fails, the log must fail-stop — appending through the stale
        // handle would acknowledge records a restart could never see.
        let reopened = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .and_then(|mut file| file.seek(SeekFrom::End(0)).map(|_| file));
        match reopened {
            Ok(file) => {
                self.file = file;
                self.poisoned = None;
            }
            Err(err) => {
                self.poisoned = Some(format!("reopening after a compaction rewrite failed: {err}"));
                return Err(StoreError::io("reopening", &self.path, err));
            }
        }
        self.records = records.len() as u64;
        self.len = bytes.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdb-store-wal-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::remove_file(&path).ok();
        path
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateSession {
                session: 1,
                dataset: DatasetSpec::Udb1,
                probe_cost: 1,
                probe_success: 0.8,
            },
            WalRecord::RegisterQuery {
                session: 1,
                query: TopKQuery::PTk { k: 2, threshold: 0.4 },
                weight: 1.0,
            },
            WalRecord::ApplyProbe {
                session: 1,
                x_tuple: 2,
                mutation: XTupleMutation::CollapseToAlternative { keep_pos: 2 },
            },
            WalRecord::ApplyMutation {
                session: 1,
                x_tuple: 4,
                mutation: XTupleMutation::Insert {
                    key: "s4".to_string(),
                    alternatives: vec![(28.5, 0.5), (23.0, 0.25)],
                },
            },
            WalRecord::ApplyMutation { session: 1, x_tuple: 0, mutation: XTupleMutation::Remove },
            WalRecord::Checkpoint {
                session: 1,
                snapshot: "snapshot-1-3.pdbs".to_string(),
                probe_cost: 1,
                probe_success: 0.8,
                specs: vec![WeightedQuery::weighted(TopKQuery::UKRanks { k: 3 }, 2.0)],
                probes: 1,
            },
            WalRecord::DropSession { session: 1 },
        ]
    }

    #[test]
    fn record_len_boundaries() {
        // At the policy bound: representable and accepted.
        assert_eq!(record_len_u32(MAX_RECORD_LEN).unwrap(), MAX_RECORD_LEN as u32);
        // One past the policy bound: rejected with the snapshot hint.
        let err = record_len_u32(MAX_RECORD_LEN + 1).unwrap_err();
        assert!(err.to_string().contains("use a snapshot"), "{err}");
        // Past u32::MAX: rejected even though the policy check would have
        // caught it first today — the representability bound is its own
        // guard, not a consequence of the policy constant.
        let err = record_len_u32((u32::MAX as usize) + 1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn appends_replay_in_order() {
        let path = temp_wal("replay.wal");
        let (mut wal, replay) = Wal::open(&path, true).unwrap();
        assert!(replay.records.is_empty());
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        assert_eq!(wal.records(), 7);
        drop(wal);

        let (wal, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(wal.records(), 7);
        assert!(replay.records.iter().all(|r| r.session() == 1));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_wal("torn.wal");
        let (mut wal, _) = Wal::open(&path, true).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        drop(wal);

        // Append half a record: a record header promising more payload
        // than the file holds.
        let intact_len = fs::metadata(&path).unwrap().len();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"only a few payload bytes");
        fs::write(&path, &bytes).unwrap();

        let (mut wal, replay) = Wal::open(&path, true).unwrap();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.truncated_bytes, bytes.len() as u64 - intact_len);
        assert_eq!(fs::metadata(&path).unwrap().len(), intact_len, "tail truncated");

        // The log keeps working after truncation.
        wal.append(&WalRecord::DropSession { session: 9 }).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.records.len(), 8);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_mid_record_truncates_from_there() {
        let path = temp_wal("corrupt.wal");
        let (mut wal, _) = Wal::open(&path, true).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        drop(wal);

        // Flip one byte inside record #2's payload: replay keeps records
        // 0 and 1, truncates the rest (records after a corrupt one are
        // unreachable — lengths no longer line up reliably).
        let mut bytes = fs::read(&path).unwrap();
        // Locate record 2's payload: skip header + two framed records.
        let mut offset = WAL_HEADER_LEN;
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            offset += RECORD_HEADER_LEN + len;
        }
        bytes[offset + RECORD_HEADER_LEN + 5] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (_, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.records, sample_records()[..2].to_vec());
        assert!(replay.truncated_bytes > 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_rejected_not_truncated() {
        let path = temp_wal("foreign.wal");
        fs::write(&path, b"this is somebody's notes file, not a WAL").unwrap();
        let err = Wal::open(&path, false).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }));
        assert_eq!(fs::read(&path).unwrap().len(), 40, "file untouched");

        let mut versioned = Vec::new();
        versioned.extend_from_slice(&WAL_MAGIC);
        versioned.extend_from_slice(&7u32.to_le_bytes());
        fs::write(&path, &versioned).unwrap();
        let err = Wal::open(&path, false).unwrap_err();
        assert!(matches!(err, StoreError::UnsupportedVersion { version: 7, .. }));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = temp_wal("rewrite.wal");
        let (mut wal, _) = Wal::open(&path, true).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        let kept = vec![sample_records().remove(3)];
        wal.rewrite(&kept).unwrap();
        assert_eq!(wal.records(), 1);
        // Appends after a rewrite land after the rewritten records.
        wal.append(&WalRecord::DropSession { session: 2 }).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0], sample_records()[3]);
        fs::remove_file(&path).ok();
    }
}
