//! # pdb-store — durable snapshots and a probe-outcome write-ahead log
//!
//! The paper's adaptive cleaning loop is long-lived and *stateful*:
//! probe outcomes permanently mutate the database, and the batch/delta
//! engines keep one shared evaluation alive across them.  This crate
//! makes that state survive restarts:
//!
//! * [`snapshot`] — a versioned, checksummed **binary snapshot format**
//!   for probabilistic databases (columnar tuple/score/probability
//!   layout, XXH64 integrity trailer) with bit-exact `f64` round trips;
//! * [`wal`] — an append-only, per-record-fsync'd **write-ahead log** of
//!   session lifecycle events (`create_session`, `register_query`,
//!   `apply_probe` with the resolved mutation), tolerant of torn tails;
//! * [`store`] — the **store directory** combining both: checkpoints,
//!   log compaction, and a recovery path that replays the log through
//!   the existing in-place delta machinery, so recovering a session
//!   costs O(probes) delta passes — not a PSR rerun per probe;
//! * [`spec`] — the durable [`DatasetSpec`] describing a session's base
//!   database (materialized by `pdb_gen::spec::build_dataset`, above
//!   this crate);
//! * [`hash`] — the self-contained XXH64 both formats use;
//! * [`error`] — [`StoreError`]: corruption is always a clean error with
//!   a path and byte offset, never a panic.
//!
//! `pdb-server` journals every session-mutating request into a store
//! (`pdb serve --store-dir`) and rehydrates sessions from it on startup;
//! `pdb export` / `pdb import` / `pdb recover` drive the formats from
//! the command line.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod hash;
mod le;
pub mod snapshot;
pub mod spec;
pub mod store;
pub mod wal;

pub use error::{Result, StoreError};
pub use snapshot::{Snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use spec::DatasetSpec;
pub use store::{
    CompactionStats, FlushPolicy, RecoveredSession, RecoveredState, Recovery, SessionCheckpoint,
    Store, WAL_FILE,
};
pub use wal::{Wal, WalRecord, WAL_VERSION};
