//! The versioned, checksummed binary snapshot format.
//!
//! A snapshot is the durable form of a [`RankedDatabase`]: the columnar
//! physical representation written out verbatim, so loading one is a
//! sequential read plus one index rebuild — no JSON parsing, no re-sort,
//! and (as the `snapshot_io` bench measures) far cheaper than regenerating
//! the dataset and re-running PSR.
//!
//! ## Layout (version 1, all integers little-endian)
//!
//! | Offset | Bytes | Field |
//! |--------|-------|-------|
//! | 0      | 4     | magic `PDBS` |
//! | 4      | 4     | format version (`u32`, currently 1) |
//! | 8      | 8     | tuple count `n` (`u64`) |
//! | 16     | 8     | x-tuple count `m` (`u64`) |
//! | 24     | var   | `m` x-tuple keys, each `u32` length + UTF-8 bytes |
//! | —      | 8·n   | tuple ids (`u64`) |
//! | —      | 8·n   | tuple x-indices (`u64`) |
//! | —      | 8·n   | scores (`f64` bit patterns) |
//! | —      | 8·n   | existential probabilities (`f64` bit patterns) |
//! | end−8  | 8     | XXH64 of every preceding byte |
//!
//! Tuples are written in rank order.  The reader rebuilds the database
//! through [`RankedDatabase::from_entries`], whose stable sort leaves an
//! already-sorted tuple array untouched and recomputes the membership
//! index and prefix masses in the same fold order the original database
//! used — so a round trip is **bit-exact**: every score and probability
//! compares equal under `f64::to_bits`, not merely within a tolerance.
//!
//! Scores and probabilities are stored as raw IEEE-754 bit patterns for
//! exactly that reason; a decimal text round trip would be lossy for
//! probabilities produced by arithmetic (e.g. reweighted alternatives).
//!
//! Every read validates the trailing checksum before trusting any length
//! field, so a flipped byte anywhere in the file — header, keys, columns
//! or trailer — surfaces as a clean [`StoreError::Corrupt`], never a
//! panic or a silently wrong database.

use crate::error::{Result, StoreError};
use crate::hash::xxh64;
use pdb_core::{RankedDatabase, TupleId};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PDBS";

/// Newest snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Seed of the trailing XXH64 integrity check.
const CHECKSUM_SEED: u64 = 0x7064_6273; // "pdbs"

/// Byte length of the fixed header (magic + version + counts).
const HEADER_LEN: usize = 24;

/// The snapshot codec: encode/decode a [`RankedDatabase`] to/from the
/// binary format, and read/write snapshot files (atomically, via a
/// same-directory temporary file and rename).
pub struct Snapshot;

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.offset.checked_add(len).filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.offset..end];
                self.offset = end;
                Ok(slice)
            }
            None => Err(StoreError::corrupt(
                self.path,
                self.offset,
                format!("{what} needs {len} bytes, only {} remain", self.bytes.len() - self.offset),
            )),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let raw = self.take(4, what)?;
        crate::le::le_u32(raw)
            .ok_or_else(|| StoreError::corrupt(self.path, self.offset, format!("{what} is torn")))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let raw = self.take(8, what)?;
        crate::le::le_u64(raw)
            .ok_or_else(|| StoreError::corrupt(self.path, self.offset, format!("{what} is torn")))
    }
}

impl Snapshot {
    /// Encode a database into the binary snapshot format (including
    /// header and trailing checksum).  Fails (rather than silently
    /// wrapping the length field) on an x-tuple key longer than
    /// `u32::MAX` bytes — such a snapshot would decode to a different
    /// database than the one written.
    pub fn encode(db: &RankedDatabase) -> Result<Vec<u8>> {
        let n = db.len();
        let m = db.num_x_tuples();
        let keys_len: usize = db.x_tuples().map(|info| 4 + info.key.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + keys_len + 4 * 8 * n + 8);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(m as u64).to_le_bytes());
        for info in db.x_tuples() {
            let key_len = u32::try_from(info.key.len()).map_err(|_| StoreError::Corrupt {
                path: PathBuf::new(),
                offset: out.len(),
                reason: format!(
                    "x-tuple key is {} bytes, not representable in the u32 length field",
                    info.key.len()
                ),
            })?;
            out.extend_from_slice(&key_len.to_le_bytes());
            out.extend_from_slice(info.key.as_bytes());
        }
        for t in db.tuples() {
            out.extend_from_slice(&(t.id.0 as u64).to_le_bytes());
        }
        for t in db.tuples() {
            out.extend_from_slice(&(t.x_index as u64).to_le_bytes());
        }
        for t in db.tuples() {
            out.extend_from_slice(&t.score.to_bits().to_le_bytes());
        }
        for t in db.tuples() {
            out.extend_from_slice(&t.prob.to_bits().to_le_bytes());
        }
        let checksum = xxh64(&out, CHECKSUM_SEED);
        out.extend_from_slice(&checksum.to_le_bytes());
        Ok(out)
    }

    /// Whether `bytes` begin with the snapshot magic (used by format
    /// sniffing in `pdb-gen`'s loader).
    pub fn is_snapshot(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && bytes[..4] == SNAPSHOT_MAGIC
    }

    /// Decode a snapshot from memory.  `origin` names the source in error
    /// messages.
    pub fn decode(bytes: &[u8], origin: &Path) -> Result<RankedDatabase> {
        if bytes.len() < 4 || bytes[..4] != SNAPSHOT_MAGIC {
            return Err(StoreError::BadMagic { path: origin.to_path_buf(), expected: "snapshot" });
        }
        if bytes.len() < HEADER_LEN + 8 {
            return Err(StoreError::corrupt(
                origin,
                bytes.len(),
                "file is shorter than the fixed header and checksum",
            ));
        }
        // Verify the trailing checksum before trusting any length field:
        // after this check every count in the file is known-good (up to
        // hash collisions), and the cursor's bounds checks below are a
        // second line of defence, not the primary one.
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = crate::le::le_u64(trailer).ok_or_else(|| {
            // Unreachable (split_at gives exactly 8 bytes), but kept as a
            // clean error: the decode path never panics on input bytes.
            StoreError::corrupt(origin, body.len(), "checksum trailer is torn")
        })?;
        let computed = xxh64(body, CHECKSUM_SEED);
        if stored != computed {
            return Err(StoreError::corrupt(
                origin,
                body.len(),
                format!("checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"),
            ));
        }

        let mut cur = Cursor { bytes: body, offset: 4, path: origin };
        let version = cur.u32("format version")?;
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: origin.to_path_buf(),
                version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let n = usize::try_from(cur.u64("tuple count")?)
            .map_err(|_| StoreError::corrupt(origin, 8, "tuple count overflows usize"))?;
        let m = usize::try_from(cur.u64("x-tuple count")?)
            .map_err(|_| StoreError::corrupt(origin, 16, "x-tuple count overflows usize"))?;

        let mut keys = Vec::with_capacity(m.min(body.len()));
        for i in 0..m {
            let len = cur.u32(&format!("length of key {i}"))? as usize;
            let raw = cur.take(len, &format!("key {i}"))?;
            let key = std::str::from_utf8(raw).map_err(|_| {
                StoreError::corrupt(origin, cur.offset, format!("key {i} is not valid UTF-8"))
            })?;
            keys.push(key.to_string());
        }

        let expected = n.checked_mul(32).and_then(|cols| cur.offset.checked_add(cols));
        if expected != Some(body.len()) {
            return Err(StoreError::corrupt(
                origin,
                cur.offset,
                format!(
                    "{n} tuples need {} column bytes, found {}",
                    n.saturating_mul(32),
                    body.len() - cur.offset
                ),
            ));
        }
        let ids = cur.take(8 * n, "tuple id column")?;
        let x_indices = cur.take(8 * n, "x-index column")?;
        let scores = cur.take(8 * n, "score column")?;
        let probs = cur.take(8 * n, "probability column")?;
        let column = |col: &[u8], i: usize| -> Result<u64> {
            col.get(8 * i..).and_then(crate::le::le_u64).ok_or_else(|| {
                StoreError::corrupt(origin, cur.offset, format!("column of tuple {i} is torn"))
            })
        };
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let x_index = usize::try_from(column(x_indices, i)?).map_err(|_| {
                StoreError::corrupt(origin, cur.offset, format!("x-index of tuple {i} overflows"))
            })?;
            entries.push((
                TupleId(column(ids, i)? as usize),
                x_index,
                f64::from_bits(column(scores, i)?),
                f64::from_bits(column(probs, i)?),
            ));
        }
        // from_entries re-validates scores/probabilities/masses, so a
        // checksum-valid file that encodes an invalid database (a writer
        // bug, or a hash collision) still comes back as a clean error.
        RankedDatabase::from_entries(entries, keys).map_err(StoreError::Engine)
    }

    /// Read a snapshot file.
    pub fn read(path: &Path) -> Result<RankedDatabase> {
        let bytes = fs::read(path).map_err(|e| StoreError::io("reading", path, e))?;
        Self::decode(&bytes, path)
    }

    /// Write a snapshot file atomically: encode, write to a
    /// same-directory temporary file, fsync, rename into place.  A crash
    /// mid-write leaves the previous file (or no file), never a torn one.
    pub fn write(db: &RankedDatabase, path: &Path) -> Result<()> {
        let bytes = Self::encode(db)?;
        write_atomic(path, &bytes)
    }
}

/// Write `bytes` to `path` via a same-directory temp file + fsync +
/// rename (shared by snapshots and log rewrites).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            StoreError::io(
                "resolving",
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name"),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let mut file = fs::File::create(&tmp).map_err(|e| StoreError::io("creating", &tmp, e))?;
    file.write_all(bytes).map_err(|e| StoreError::io("writing", &tmp, e))?;
    file.sync_data().map_err(|e| StoreError::io("syncing", &tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| StoreError::io("renaming", &tmp, e))?;
    sync_parent_dir(path)
}

/// Fsync the directory containing `path`, making a just-created or
/// just-renamed entry durable.  Platforms where directories cannot be
/// opened for sync (e.g. Windows) skip this silently — but once the
/// directory *is* open, a failing `sync_all` is a real durability hole
/// (the rename may not survive a crash) and is propagated.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<()> {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            dir.sync_all().map_err(|e| StoreError::io("syncing", parent, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn assert_bit_exact(a: &RankedDatabase, b: &RankedDatabase) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.num_x_tuples(), b.num_x_tuples());
        for pos in 0..a.len() {
            let (x, y) = (a.tuple(pos), b.tuple(pos));
            assert_eq!(x.id, y.id);
            assert_eq!(x.x_index, y.x_index);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.prob.to_bits(), y.prob.to_bits());
        }
        for l in 0..a.num_x_tuples() {
            assert_eq!(a.x_tuple(l).key, b.x_tuple(l).key);
            assert_eq!(a.x_tuple(l).members, b.x_tuple(l).members);
            assert_eq!(a.x_tuple(l).total_mass.to_bits(), b.x_tuple(l).total_mass.to_bits());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let db = udb1();
        let bytes = Snapshot::encode(&db).expect("encoding fits the format");
        assert!(Snapshot::is_snapshot(&bytes));
        let back = Snapshot::decode(&bytes, Path::new("mem")).unwrap();
        assert_bit_exact(&db, &back);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pdb-store-snapshot-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("udb1.pdbs");
        let db = udb1();
        Snapshot::write(&db, &path).unwrap();
        let back = Snapshot::read(&path).unwrap();
        assert_bit_exact(&db, &back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn non_snapshot_bytes_are_rejected_by_magic() {
        let err = Snapshot::decode(b"{\"json\": true}", Path::new("x.json")).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }));
        assert!(!Snapshot::is_snapshot(b"PD"));
    }

    #[test]
    fn unsupported_version_is_reported() {
        let mut bytes = Snapshot::encode(&udb1()).expect("encoding fits the format");
        bytes[4] = 99; // bump the version field...
        let len = bytes.len();
        let checksum = xxh64(&bytes[..len - 8], CHECKSUM_SEED);
        bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes()); // ...with a valid checksum
        let err = Snapshot::decode(&bytes, Path::new("mem")).unwrap_err();
        assert!(matches!(err, StoreError::UnsupportedVersion { version: 99, .. }));
    }

    #[test]
    fn truncation_and_byte_flips_are_clean_errors() {
        let bytes = Snapshot::encode(&udb1()).expect("encoding fits the format");
        for cut in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..cut], Path::new("mem")).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt { .. } | StoreError::BadMagic { .. }),
                "cut at {cut}: {err}"
            );
        }
        // The exhaustive every-byte flip suite lives in
        // tests/snapshot_roundtrip.rs; spot-check the three regions here.
        for pos in [5usize, 30, bytes.len() - 3] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x40;
            assert!(
                Snapshot::decode(&flipped, Path::new("mem")).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Snapshot::read(Path::new("/definitely/not/here.pdbs")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }
}
