//! The store directory: one write-ahead log plus checkpoint snapshots,
//! with crash recovery by delta replay.
//!
//! ## Directory layout
//!
//! ```text
//! <store-dir>/
//!   wal.log                     the write-ahead log (see [`crate::wal`])
//!   snapshot-<sid>-<seq>.pdbs   checkpoint snapshots (see [`crate::Snapshot`])
//! ```
//!
//! ## Recovery
//!
//! [`Store::open`] replays the log front to back (truncating a torn tail,
//! never erroring on one).  Per session the replay mirrors exactly what
//! the live server did:
//!
//! * `create_session` materializes the journalled [`DatasetSpec`] through
//!   the caller-supplied builder (the generators are deterministic, so
//!   the base database comes back bit-for-bit);
//! * `checkpoint` loads the referenced snapshot instead and discards
//!   every earlier record of that session — the snapshot *is* those
//!   records, pre-applied;
//! * `register_query` re-plans the session's shared evaluation (one PSR
//!   run at the new `k_max`, just like live registration);
//! * `apply_probe` records are buffered and folded in through
//!   [`BatchQuality::replay_in_place`] — **one in-place delta pass per
//!   probe** on the shared master matrix, with a single quality refresh
//!   per session at the end.  Recovery cost is O(probes) delta passes,
//!   not a PSR rerun per probe.
//!
//! ## Checkpoints and compaction
//!
//! [`Store::checkpoint`] writes a session's current (mutated) database as
//! a snapshot and appends a `checkpoint` record; from then on recovery of
//! that session starts at the snapshot.  Appending alone never shrinks
//! the log, so [`Store::truncate_log`] compacts it: records that precede
//! a session's last checkpoint — and all records of dropped sessions —
//! are filtered out, the survivors are atomically rewritten, and
//! unreferenced snapshot files are deleted.  The filter is a pure
//! function of the log, so it needs no access to live sessions and can
//! run while they keep serving (their appends simply wait on the log
//! lock for the rewrite's duration).

use crate::error::{Result, StoreError};
use crate::snapshot::Snapshot;
use crate::spec::DatasetSpec;
use crate::wal::{Wal, WalRecord};
use pdb_core::{DbError, RankedDatabase, Result as DbResult};
use pdb_engine::delta::{DeltaStats, XTupleMutation};
use pdb_quality::{BatchQuality, WeightedQuery};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// File name of the single-writer lock inside a store directory.
pub const LOCK_FILE: &str = "store.lock";

/// A session's full durable state, as handed to [`Store::checkpoint`].
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// The session id.
    pub session: u64,
    /// The session's current (mutated) database.
    pub db: RankedDatabase,
    /// Registered queries, in registration order.
    pub specs: Vec<WeightedQuery>,
    /// Budget units one probe costs.
    pub probe_cost: u64,
    /// Probability that one probe succeeds.
    pub probe_success: f64,
    /// Probes applied to the session so far.
    pub probes: u64,
}

/// The evaluation state a session recovered in.
#[derive(Debug)]
pub enum RecoveredState {
    /// No queries were registered: only the database exists.
    Idle(RankedDatabase),
    /// The live shared evaluation, rebuilt by one PSR run plus delta
    /// replay of the journalled probes.
    Live(Box<BatchQuality<'static>>),
}

impl RecoveredState {
    /// The recovered database version.
    pub fn database(&self) -> &RankedDatabase {
        match self {
            RecoveredState::Idle(db) => db,
            RecoveredState::Live(batch) => batch.database(),
        }
    }
}

/// One session rebuilt from the log.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The session's id (as originally assigned by the server).
    pub id: u64,
    /// Budget units one probe costs.
    pub probe_cost: u64,
    /// Probability that one probe succeeds.
    pub probe_success: f64,
    /// Registered queries, in registration order.
    pub specs: Vec<WeightedQuery>,
    /// Total probes ever applied (checkpointed + replayed).
    pub probes: u64,
    /// Probes replayed from the log during this recovery (excludes those
    /// already baked into a checkpoint snapshot).
    pub probes_replayed: u64,
    /// How the replayed delta passes produced their rows.
    pub replay_stats: DeltaStats,
    /// The recovered evaluation state.
    pub state: RecoveredState,
}

/// What [`Store::open`] rebuilt from the directory.
#[derive(Debug)]
pub struct Recovery {
    /// Recovered sessions, ascending by id.
    pub sessions: Vec<RecoveredSession>,
    /// The smallest session id the server may assign next (one past the
    /// largest id the log has ever mentioned).
    pub next_session_id: u64,
    /// Valid records replayed from the log.
    pub records: u64,
    /// Bytes of torn tail truncated from the log (0 for a clean log).
    pub truncated_bytes: u64,
}

/// What [`Store::truncate_log`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Records in the log before filtering.
    pub records_before: u64,
    /// Records surviving the filter.
    pub records_after: u64,
    /// Snapshot files deleted because no surviving record references
    /// them.
    pub snapshots_removed: usize,
}

/// When an acknowledged [`Store::append`] is made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// One `fsync` per appended record, before the append returns — the
    /// durability oracle, and exactly what `Store::open(dir, true, ..)`
    /// does.
    #[default]
    PerRecord,
    /// A dedicated flusher thread batches appends and fsyncs once per
    /// window.  An append still blocks until a flush covering its record
    /// has completed, so the durability *contract* is unchanged — only
    /// the fsync count amortizes across concurrent appenders.
    GroupCommit {
        /// Flush as soon as this many unsynced records are pending.
        max_batch: usize,
        /// Optional linger: keep collecting up to this long after pending
        /// records were first observed before flushing, trading commit
        /// latency for fuller batches.  Zero — the recommended setting —
        /// flushes as soon as the device is free; batches still form from
        /// the records that accrue *while* the previous fsync runs, so on
        /// a fast device a linger only taxes every commit (the same
        /// reason PostgreSQL ships `commit_delay = 0`).
        max_wait: Duration,
    },
}

/// State shared between group-commit appenders and the flusher thread.
/// `dirty`/`synced` are monotone record counts: an append registers
/// `dirty += 1` only *after* its frame is fully written, so a flush that
/// read `target = dirty` and then fsync'd covers every registered record.
#[derive(Debug, Default)]
struct FlushState {
    /// Records fully framed into the log file.
    dirty: u64,
    /// Records covered by a completed fsync (or a compaction rewrite,
    /// which is durable by construction).
    synced: u64,
    /// Completed flush windows (observability: tests and benches assert
    /// that this stays well below the append count under concurrency).
    flushes: u64,
    /// Sticky flush failure: the log fail-stops — every waiting and
    /// future append errors — instead of acknowledging records whose
    /// durability is unknown.
    error: Option<String>,
    /// Set by [`Store::drop`]; the flusher drains pending work and exits.
    shutdown: bool,
}

#[derive(Debug)]
struct FlushShared {
    state: Mutex<FlushState>,
    /// Signalled by appenders when a record becomes pending.
    work: Condvar,
    /// Signalled by the flusher when `synced` advances or `error` is set.
    done: Condvar,
}

impl FlushShared {
    fn state(&self) -> MutexGuard<'_, FlushState> {
        // The guarded state is a handful of scalars with no multi-field
        // invariant a panicking holder could tear; recover the guard.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The group-commit flusher: one background thread fsync'ing the log once
/// per window on behalf of every concurrent appender.
#[derive(Debug)]
struct Flusher {
    shared: Arc<FlushShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A durable session store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Arc<Mutex<Wal>>,
    snapshot_seq: AtomicU64,
    records_since_truncate: AtomicU64,
    /// Present under [`FlushPolicy::GroupCommit`]; `None` means appends
    /// sync (or not) inside [`Wal::append`] itself.
    flusher: Option<Flusher>,
    /// Holds the OS advisory lock on [`LOCK_FILE`] for the store's
    /// lifetime (released automatically when the handle closes, so a
    /// killed process never leaves a stale lock behind).
    _lock: fs::File,
}

/// Builder callback materializing a [`DatasetSpec`] (dependency-inverted:
/// the generators live in `pdb-gen`, above this crate).
pub type DatasetBuilder<'a> = dyn Fn(&DatasetSpec) -> DbResult<RankedDatabase> + 'a;

impl Store {
    /// Open (or create) the store directory, replay the log, and return
    /// the store plus everything it recovered.  `build` materializes the
    /// dataset specs journalled by `create_session` records (pass
    /// `pdb_gen::spec::build_dataset`).  With `sync`, every append is
    /// fsync'd before it is acknowledged.
    /// Fails if another process already holds the store open: two
    /// writers appending to (and open-truncating) the same log through
    /// independent handles would interleave frames and destroy each
    /// other's acknowledged records.
    pub fn open(dir: &Path, sync: bool, build: &DatasetBuilder<'_>) -> Result<(Self, Recovery)> {
        Self::open_inner(dir, sync, None, build)
    }

    /// [`open`](Self::open) with an explicit [`FlushPolicy`].
    /// `PerRecord` is identical to `open(dir, true, build)`;
    /// `GroupCommit` opens the log unsynced and spawns the flusher
    /// thread that batches fsyncs (appends still block until their
    /// record is covered by a completed flush).
    pub fn open_with_policy(
        dir: &Path,
        policy: FlushPolicy,
        build: &DatasetBuilder<'_>,
    ) -> Result<(Self, Recovery)> {
        match policy {
            FlushPolicy::PerRecord => Self::open_inner(dir, true, None, build),
            FlushPolicy::GroupCommit { max_batch, max_wait } => {
                if max_batch == 0 {
                    return Err(StoreError::io(
                        "opening",
                        dir,
                        std::io::Error::other("group commit needs max_batch >= 1"),
                    ));
                }
                Self::open_inner(dir, false, Some((max_batch, max_wait)), build)
            }
        }
    }

    fn open_inner(
        dir: &Path,
        sync: bool,
        group: Option<(usize, Duration)>,
        build: &DatasetBuilder<'_>,
    ) -> Result<(Self, Recovery)> {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("creating", dir, e))?;
        let lock_path = dir.join(LOCK_FILE);
        let lock_err = |e| StoreError::io("creating", &lock_path, e);
        // pdb-analyze: allow(durability-pattern): the lock file carries no data, it exists only to be flock'd; losing it on crash is correct
        let lock = fs::File::create(&lock_path).map_err(lock_err)?;
        lock.try_lock().map_err(|e| {
            StoreError::io(
                "locking",
                &lock_path,
                std::io::Error::other(format!(
                    "another process holds this store open ({e}); \
                     a store directory has exactly one writer"
                )),
            )
        })?;
        let (wal, replay) = Wal::open(&dir.join(WAL_FILE), sync)?;
        let wal = Arc::new(Mutex::new(wal));
        let flusher = match group {
            None => None,
            Some((max_batch, max_wait)) => {
                Some(spawn_flusher(dir, Arc::clone(&wal), max_batch, max_wait)?)
            }
        };
        let snapshot_seq = max_snapshot_seq(dir)?;
        let store = Self {
            dir: dir.to_path_buf(),
            wal,
            snapshot_seq: AtomicU64::new(snapshot_seq),
            // Count the records the log already holds: a server that is
            // restarted more often than it appends `compact_every`
            // records would otherwise never reach its auto-compaction
            // threshold, and the log would grow without bound across
            // restarts.
            records_since_truncate: AtomicU64::new(replay.records.len() as u64),
            flusher,
            _lock: lock,
        };
        let recovery = replay_records(dir, replay.records, replay.truncated_bytes, build)?;
        Ok((store, recovery))
    }

    /// Read-only recovery preview (the dry run behind `pdb recover`):
    /// scan and replay the log **without** creating the directory,
    /// writing a header, or truncating a torn tail on disk.  The torn
    /// tail a real [`open`](Self::open) would truncate is only
    /// *reported*, via [`Recovery::truncated_bytes`].
    pub fn peek(dir: &Path, build: &DatasetBuilder<'_>) -> Result<Recovery> {
        let path = dir.join(WAL_FILE);
        let bytes = fs::read(&path).map_err(|e| StoreError::io("reading", &path, e))?;
        let (records, valid_len) = crate::wal::scan(&bytes, &path)?;
        replay_records(dir, records, (bytes.len() - valid_len) as u64, build)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lock the log, failing — not panicking — when a previous writer
    /// panicked while holding it.  `Wal::append` already rolls back or
    /// fail-stops on its own errors; a *poisoned lock* additionally means
    /// even that bookkeeping may have been interrupted mid-update, so
    /// every later log operation reports a clean error instead of
    /// guessing at the log's state.
    fn wal(&self) -> Result<MutexGuard<'_, Wal>> {
        self.wal.lock().map_err(|_| {
            StoreError::io(
                "locking",
                &self.dir,
                std::io::Error::other("log lock poisoned: a writer panicked mid-operation"),
            )
        })
    }

    /// Append one record to the log.  Under `sync` / `PerRecord` the
    /// record is fsync'd before this returns; under `GroupCommit` the
    /// call blocks until a batched flush covering the record completed —
    /// either way an acknowledged append is durable.
    pub fn append(&self, record: &WalRecord) -> Result<()> {
        // The span covers framing *and* the wait for durability, so the
        // histogram reports what an acknowledged append actually costs
        // callers (under group commit, mostly the wait).
        let _span = pdb_obs::metrics::WAL_APPEND_LATENCY_NS.span();
        self.wal()?.append(record)?;
        if let Some(flusher) = &self.flusher {
            flusher.wait_durable(&self.dir)?;
        }
        self.records_since_truncate.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Completed group-commit flush windows (0 under per-record fsync).
    /// Under concurrency this stays well below the append count — the
    /// whole point of the policy.
    pub fn flushes(&self) -> u64 {
        self.flusher.as_ref().map_or(0, |f| f.shared.state().flushes)
    }

    /// The group-commit flusher's sticky fsync failure, if one has
    /// happened (`None` under per-record fsync and on a healthy log).
    /// Once set, the log has fail-stopped: every waiting and future
    /// append errors.  Surfaced through `stats`/`metrics` so operators
    /// see the degradation before the next write trips over it.
    pub fn flush_error(&self) -> Option<String> {
        self.flusher.as_ref().and_then(|f| f.shared.state().error.clone())
    }

    /// Records appended since the last [`truncate_log`](Self::truncate_log)
    /// (or since open).  Servers use this as the auto-compaction trigger.
    pub fn records_since_truncate(&self) -> u64 {
        self.records_since_truncate.load(Ordering::Relaxed)
    }

    /// Total records currently in the log.
    pub fn records(&self) -> u64 {
        // Reads a plain counter; recovering a poisoned guard cannot
        // observe torn state, and a stats read should not fail.
        self.wal.lock().unwrap_or_else(PoisonError::into_inner).records()
    }

    /// Write `state` as a checkpoint: its database becomes a snapshot
    /// file and a `checkpoint` record is appended, so recovery of this
    /// session starts at the snapshot instead of its first record.
    /// Returns the snapshot's file name.
    ///
    /// Callers must hold the session's own lock across the state capture
    /// *and* this call, so no probe record for the session can land
    /// between the captured state and its checkpoint record.
    pub fn checkpoint(&self, state: &SessionCheckpoint) -> Result<String> {
        let seq = self.snapshot_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let name = format!("snapshot-{}-{seq}.pdbs", state.session);
        Snapshot::write(&state.db, &self.dir.join(&name))?;
        self.append(&WalRecord::Checkpoint {
            session: state.session,
            snapshot: name.clone(),
            probe_cost: state.probe_cost,
            probe_success: state.probe_success,
            specs: state.specs.clone(),
            probes: state.probes,
        })?;
        Ok(name)
    }

    /// Compact the log: drop records superseded by a later checkpoint of
    /// their session (and all records of dropped sessions), atomically
    /// rewrite the survivors, and delete snapshot files nothing
    /// references anymore.
    ///
    /// The filter is computed from the log alone, under the log lock:
    /// concurrent appends simply wait, and any record appended after the
    /// lock is released post-dates every checkpoint the filter saw, so it
    /// is never dropped.
    pub fn truncate_log(&self) -> Result<CompactionStats> {
        let mut wal = self.wal()?;
        let records = crate::wal::scan_file(wal.path())?;
        let kept = filter_compacted(&records);
        let stats = CompactionStats {
            records_before: records.len() as u64,
            records_after: kept.len() as u64,
            snapshots_removed: 0,
        };
        wal.rewrite(&kept)?;
        self.records_since_truncate.store(0, Ordering::Relaxed);
        if let Some(flusher) = &self.flusher {
            // The rewrite was written atomically and fsync'd, and no
            // frame can land while the log lock is held: everything
            // framed so far is durable, so release any waiting appenders.
            let mut state = flusher.shared.state();
            state.synced = state.synced.max(state.dirty);
            flusher.shared.done.notify_all();
        }
        drop(wal);

        // Garbage-collect ONLY the snapshot files referenced by records
        // the filter just dropped.  A directory sweep of "everything not
        // referenced by a kept record" would race a concurrent
        // `checkpoint`: its snapshot file exists before its WAL record
        // does, so the sweep would delete a file whose record lands right
        // after the filter — leaving the log pointing at a missing file
        // and making the next recovery fail.  Dropped-record snapshots
        // cannot race that way (their records are already superseded);
        // files orphaned by a crash between snapshot write and record
        // append merely leak until a later compaction drops their
        // record, and are harmless.
        let referenced: std::collections::HashSet<&str> =
            kept.iter().filter_map(checkpoint_snapshot).collect();
        let mut removed = 0;
        for name in records.iter().filter_map(checkpoint_snapshot) {
            if !referenced.contains(name) && fs::remove_file(self.dir.join(name)).is_ok() {
                removed += 1;
            }
        }
        Ok(CompactionStats { snapshots_removed: removed, ..stats })
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Some(flusher) = self.flusher.take() {
            {
                let mut state = flusher.shared.state();
                state.shutdown = true;
            }
            flusher.shared.work.notify_all();
            flusher.shared.done.notify_all();
            if let Some(handle) = flusher.handle {
                // The flusher drains pending work before exiting; a
                // panicked flusher already left the sticky error set.
                // pdb-analyze: allow(error-swallow): drop path; a panicked flusher already fail-stopped every waiter via the sticky error
                let _ = handle.join();
            }
        }
    }
}

impl Flusher {
    /// Register one fully framed record and block until a flush covers
    /// it.  Must be called *after* [`Wal::append`] returned — the
    /// dirty count's meaning is "frames completely in the file".
    fn wait_durable(&self, dir: &Path) -> Result<()> {
        let mut state = self.shared.state();
        state.dirty += 1;
        let seq = state.dirty;
        self.shared.work.notify_one();
        while state.synced < seq {
            if let Some(why) = &state.error {
                return Err(StoreError::io(
                    "syncing",
                    dir,
                    std::io::Error::other(format!("group-commit flush failed: {why}")),
                ));
            }
            state = self.shared.done.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        Ok(())
    }
}

/// Start the group-commit flusher thread.
fn spawn_flusher(
    dir: &Path,
    wal: Arc<Mutex<Wal>>,
    max_batch: usize,
    max_wait: Duration,
) -> Result<Flusher> {
    let shared = Arc::new(FlushShared {
        state: Mutex::new(FlushState::default()),
        work: Condvar::new(),
        done: Condvar::new(),
    });
    let thread_shared = Arc::clone(&shared);
    let log_path = dir.join(WAL_FILE);
    let handle = std::thread::Builder::new()
        .name("pdb-store-flusher".to_string())
        .spawn(move || flusher_loop(&wal, &thread_shared, max_batch as u64, max_wait, &log_path))
        .map_err(|e| StoreError::io("spawning the flusher for", dir, e))?;
    Ok(Flusher { shared, handle: Some(handle) })
}

/// The flusher: wait for pending records, optionally linger for a fuller
/// batch (`max_wait` — zero skips the linger entirely), fsync once,
/// advance `synced`, repeat.  One fsync covers every record registered
/// before `target` was read, because a record's frame is completely
/// written before its registration.
fn flusher_loop(
    wal: &Mutex<Wal>,
    shared: &FlushShared,
    max_batch: u64,
    max_wait: Duration,
    log_path: &Path,
) {
    loop {
        let target = {
            let mut state = shared.state();
            loop {
                if state.dirty > state.synced {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
            let window = Instant::now();
            while !max_wait.is_zero() && state.dirty - state.synced < max_batch && !state.shutdown {
                let Some(remaining) = max_wait.checked_sub(window.elapsed()) else { break };
                let (next, timeout) = shared
                    .work
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            state.dirty
        };
        // fsync on a duplicated handle, *outside* the log lock: appenders
        // keep framing records while the sync runs, and those records
        // become the next batch.
        let handle = {
            let guard = wal.lock().unwrap_or_else(PoisonError::into_inner);
            guard.sync_handle()
        };
        let fsync_span = pdb_obs::metrics::WAL_FSYNC_LATENCY_NS.span();
        let result = handle
            .and_then(|file| file.sync_data().map_err(|e| StoreError::io("syncing", log_path, e)));
        fsync_span.finish();
        let mut state = shared.state();
        match result {
            Ok(()) => {
                // How many records this one fsync made durable — the
                // batch-size distribution is the whole story of group
                // commit (1 everywhere means the policy amortizes
                // nothing).  Saturating: a concurrent compaction may have
                // already marked everything synced, making this window
                // empty.
                let batch = target.saturating_sub(state.synced);
                if batch > 0 {
                    pdb_obs::metrics::WAL_FSYNC_BATCH_RECORDS.record(batch);
                }
                state.synced = state.synced.max(target);
                state.flushes += 1;
            }
            Err(err) => {
                pdb_obs::metrics::WAL_DEGRADED.set(1);
                state.error = Some(err.to_string());
            }
        }
        shared.done.notify_all();
    }
}

/// Replay scanned records into recovered sessions (checkpoint snapshots
/// are loaded relative to `dir`).
fn replay_records(
    dir: &Path,
    records: Vec<WalRecord>,
    truncated_bytes: u64,
    build: &DatasetBuilder<'_>,
) -> Result<Recovery> {
    let mut sessions: BTreeMap<u64, SessionBuild> = BTreeMap::new();
    let mut max_id = 0u64;
    let total = records.len() as u64;
    for (index, record) in records.into_iter().enumerate() {
        let index = index as u64;
        max_id = max_id.max(record.session());
        match record {
            WalRecord::CreateSession { session, dataset, probe_cost, probe_success } => {
                let db = build(&dataset)
                    .map_err(|source| StoreError::Replay { record: index, source })?;
                sessions.insert(session, SessionBuild::new(db, probe_cost, probe_success));
            }
            WalRecord::RegisterQuery { session, query, weight } => {
                let s = lookup(&mut sessions, session, index)?;
                s.flush()?;
                s.specs.push(WeightedQuery::weighted(query, weight));
                s.replan(index)?;
            }
            WalRecord::ApplyProbe { session, x_tuple, mutation }
            | WalRecord::ApplyMutation { session, x_tuple, mutation } => {
                let s = lookup(&mut sessions, session, index)?;
                s.pending.push((index, x_tuple, mutation));
                s.probes += 1;
                s.probes_replayed += 1;
            }
            WalRecord::DropSession { session } => {
                sessions.remove(&session);
            }
            WalRecord::Checkpoint {
                session,
                snapshot,
                probe_cost,
                probe_success,
                specs,
                probes,
            } => {
                let db = Snapshot::read(&dir.join(&snapshot))?;
                // The snapshot already contains every earlier record's
                // effect, including buffered probes: start over from it.
                let mut s = SessionBuild::new(db, probe_cost, probe_success);
                s.specs = specs;
                s.probes = probes;
                s.replan(index)?;
                sessions.insert(session, s);
            }
        }
    }

    let mut recovered = Vec::with_capacity(sessions.len());
    for (id, mut s) in sessions {
        s.flush()?;
        recovered.push(s.finish(id));
    }
    Ok(Recovery {
        sessions: recovered,
        next_session_id: max_id + 1,
        records: total,
        truncated_bytes,
    })
}

/// Look up a session during replay; a record naming an unknown session
/// means the log is internally inconsistent.
fn lookup(
    sessions: &mut BTreeMap<u64, SessionBuild>,
    session: u64,
    record: u64,
) -> Result<&mut SessionBuild> {
    sessions.get_mut(&session).ok_or_else(|| StoreError::Replay {
        record,
        source: DbError::invalid_parameter(format!(
            "log references session {session} before creating it"
        )),
    })
}

/// The snapshot file a record references, if it is a checkpoint.
fn checkpoint_snapshot(record: &WalRecord) -> Option<&str> {
    match record {
        WalRecord::Checkpoint { snapshot, .. } => Some(snapshot.as_str()),
        _ => None,
    }
}

/// The compaction filter: keep a record iff its session is still alive
/// and the record is not superseded by a later checkpoint of the same
/// session.
///
/// One caveat: recovery derives `next_session_id` from the ids the log
/// mentions, and erasing every record of a dropped session could erase
/// the *highest* id ever assigned — a restart would then reuse it, and a
/// stale client holding the old id would silently operate on someone
/// else's new session.  When filtering would lower the log's maximum
/// mentioned id, a single `drop_session` tombstone for that id is kept
/// as the high-water mark.
fn filter_compacted(records: &[WalRecord]) -> Vec<WalRecord> {
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut last_checkpoint: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::new();
    for (index, record) in records.iter().enumerate() {
        match record {
            WalRecord::DropSession { session } => {
                dropped.insert(*session);
            }
            WalRecord::Checkpoint { session, .. } => {
                last_checkpoint.insert(*session, index);
            }
            _ => {}
        }
    }
    let mut kept = Vec::new();
    for (index, record) in records.iter().enumerate() {
        let session = record.session();
        let superseded =
            last_checkpoint.get(&session).is_some_and(|&checkpoint| index < checkpoint);
        if !dropped.contains(&session) && !superseded {
            kept.push(record.clone());
        }
    }
    if let Some(max_id) = records.iter().map(WalRecord::session).max() {
        if kept.iter().map(WalRecord::session).max() != Some(max_id) {
            kept.push(WalRecord::DropSession { session: max_id });
        }
    }
    kept
}

/// Largest `<seq>` among existing `snapshot-<sid>-<seq>.pdbs` files, so
/// new checkpoints never collide with files from a previous run.
fn max_snapshot_seq(dir: &Path) -> Result<u64> {
    let mut max = 0u64;
    for entry in fs::read_dir(dir).map_err(|e| StoreError::io("listing", dir, e))? {
        let entry = entry.map_err(|e| StoreError::io("listing", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".pdbs"))
            .and_then(|rest| rest.rsplit('-').next())
            .and_then(|seq| seq.parse::<u64>().ok())
        {
            max = max.max(seq);
        }
    }
    Ok(max)
}

/// Replay-time accumulator for one session.
struct SessionBuild {
    probe_cost: u64,
    probe_success: f64,
    specs: Vec<WeightedQuery>,
    state: RecoveredState,
    /// Probe records not yet folded into `state`, as
    /// `(record index, x-tuple, mutation)`.
    pending: Vec<(u64, usize, XTupleMutation)>,
    probes: u64,
    probes_replayed: u64,
    stats: DeltaStats,
}

impl SessionBuild {
    fn new(db: RankedDatabase, probe_cost: u64, probe_success: f64) -> Self {
        Self {
            probe_cost,
            probe_success,
            specs: Vec::new(),
            state: RecoveredState::Idle(db),
            pending: Vec::new(),
            probes: 0,
            probes_replayed: 0,
            stats: DeltaStats::default(),
        }
    }

    /// Fold the buffered probes into the state: one delta pass per probe
    /// on a live evaluation, or plain database mutations while idle (a
    /// log can only contain the latter if it was written by a client
    /// driving mutations without registered queries).
    fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut self.pending);
        match &mut self.state {
            RecoveredState::Live(batch) => {
                // Non-empty: the is_empty early return above just ran.
                let first = match pending.first() {
                    Some(p) => p.0,
                    None => return Ok(()),
                };
                let update = batch
                    .replay_in_place(pending.into_iter().map(|(_, l, m)| (l, m)))
                    .map_err(|source| StoreError::Replay { record: first, source })?;
                self.stats.accumulate(&update.stats);
            }
            RecoveredState::Idle(db) => {
                for (index, l, mutation) in pending {
                    apply_to_db(db, l, &mutation)
                        .map_err(|source| StoreError::Replay { record: index, source })?;
                }
            }
        }
        Ok(())
    }

    /// Re-plan the shared evaluation over the current database — exactly
    /// what live `register_query` does (and what a checkpoint load needs
    /// when queries were registered).
    fn replan(&mut self, at_record: u64) -> Result<()> {
        if self.specs.is_empty() {
            return Ok(());
        }
        let db = self.state.database().clone();
        let batch = BatchQuality::from_owned(db, self.specs.clone())
            .map_err(|source| StoreError::Replay { record: at_record, source })?;
        self.state = RecoveredState::Live(Box::new(batch));
        Ok(())
    }

    fn finish(self, id: u64) -> RecoveredSession {
        RecoveredSession {
            id,
            probe_cost: self.probe_cost,
            probe_success: self.probe_success,
            specs: self.specs,
            probes: self.probes,
            probes_replayed: self.probes_replayed,
            replay_stats: self.stats,
            state: self.state,
        }
    }
}

/// Apply one journalled mutation directly to a database (the idle-session
/// replay path).
fn apply_to_db(db: &mut RankedDatabase, l: usize, mutation: &XTupleMutation) -> DbResult<()> {
    match mutation {
        XTupleMutation::CollapseToAlternative { keep_pos } => {
            db.collapse_x_tuple_in_place(l, *keep_pos)
        }
        XTupleMutation::CollapseToNull => db.collapse_x_tuple_to_null_in_place(l),
        XTupleMutation::Reweight { probs } => db.reweight_x_tuple_in_place(l, probs),
        XTupleMutation::Insert { key, alternatives } => {
            db.insert_x_tuple_in_place(key.clone(), alternatives).map(|_| ())
        }
        XTupleMutation::Remove => db.remove_x_tuple_in_place(l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_engine::queries::TopKQuery;

    fn udb1() -> RankedDatabase {
        RankedDatabase::from_scored_x_tuples(&[
            vec![(21.0, 0.6), (32.0, 0.4)],
            vec![(30.0, 0.7), (22.0, 0.3)],
            vec![(25.0, 0.4), (27.0, 0.6)],
            vec![(26.0, 1.0)],
        ])
        .unwrap()
    }

    fn build(spec: &DatasetSpec) -> DbResult<RankedDatabase> {
        match spec {
            DatasetSpec::Udb1 => Ok(udb1()),
            DatasetSpec::Inline { x_tuples } => RankedDatabase::from_scored_x_tuples(x_tuples),
            other => Err(DbError::invalid_parameter(format!("test builder: {other:?}"))),
        }
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdb-store-store-test").join(name);
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn pt2() -> WalRecord {
        WalRecord::RegisterQuery {
            session: 1,
            query: TopKQuery::PTk { k: 2, threshold: 0.4 },
            weight: 1.0,
        }
    }

    fn create1() -> WalRecord {
        WalRecord::CreateSession {
            session: 1,
            dataset: DatasetSpec::Udb1,
            probe_cost: 1,
            probe_success: 0.8,
        }
    }

    fn probe1() -> WalRecord {
        WalRecord::ApplyProbe {
            session: 1,
            x_tuple: 2,
            mutation: XTupleMutation::CollapseToAlternative { keep_pos: 2 },
        }
    }

    #[test]
    fn create_register_probe_replays_to_the_mutated_state() {
        let dir = temp_store("basic");
        {
            let (store, recovery) = Store::open(&dir, true, &build).unwrap();
            assert!(recovery.sessions.is_empty());
            assert_eq!(recovery.next_session_id, 1);
            store.append(&create1()).unwrap();
            store.append(&pt2()).unwrap();
            store.append(&probe1()).unwrap();
        }

        let (_, recovery) = Store::open(&dir, true, &build).unwrap();
        assert_eq!(recovery.records, 3);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.next_session_id, 2);
        let session = &recovery.sessions[0];
        assert_eq!((session.id, session.probes, session.probes_replayed), (1, 1, 1));
        assert!(session.replay_stats.rows_total() > 0, "probe replayed via delta pass");

        // The recovered state matches replaying the same steps in process.
        let mut mirror = BatchQuality::from_owned(
            udb1(),
            vec![WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 })],
        )
        .unwrap();
        mirror
            .apply_collapse_in_place(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        let RecoveredState::Live(batch) = &session.state else { panic!("live session") };
        assert_eq!(batch.database(), mirror.database());
        assert!((batch.aggregate_quality() - mirror.aggregate_quality()).abs() < 1e-12);
        assert!((batch.aggregate_quality() - (-1.85)).abs() < 0.005, "udb1 → udb2");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_supersedes_earlier_records_and_compaction_drops_them() {
        let dir = temp_store("checkpoint");
        let (store, _) = Store::open(&dir, true, &build).unwrap();
        store.append(&create1()).unwrap();
        store.append(&pt2()).unwrap();
        store.append(&probe1()).unwrap();

        // Checkpoint the post-probe state (as the server would, from the
        // live session).
        let mut live = BatchQuality::from_owned(
            udb1(),
            vec![WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 })],
        )
        .unwrap();
        live.apply_collapse_in_place(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        let name = store
            .checkpoint(&SessionCheckpoint {
                session: 1,
                db: live.database().clone(),
                specs: vec![WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 })],
                probe_cost: 1,
                probe_success: 0.8,
                probes: 1,
            })
            .unwrap();
        assert!(dir.join(&name).exists());

        // A probe after the checkpoint must survive compaction.
        store
            .append(&WalRecord::ApplyProbe {
                session: 1,
                x_tuple: 0,
                mutation: XTupleMutation::Reweight { probs: vec![0.5, 0.5] },
            })
            .unwrap();
        let stats = store.truncate_log().unwrap();
        assert_eq!(stats.records_before, 5);
        assert_eq!(stats.records_after, 2, "checkpoint + post-checkpoint probe");
        assert_eq!(store.records_since_truncate(), 0);

        drop(store);
        let (_, recovery) = Store::open(&dir, true, &build).unwrap();
        let session = &recovery.sessions[0];
        assert_eq!(session.probes, 2, "checkpointed probe count + replayed probe");
        assert_eq!(session.probes_replayed, 1, "only the post-checkpoint probe replays");
        // Mirror: checkpointed state + the reweight.
        live.apply_collapse_in_place(0, &XTupleMutation::Reweight { probs: vec![0.5, 0.5] })
            .unwrap();
        assert_eq!(session.state.database(), live.database());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_sessions_vanish_from_recovery_and_compaction() {
        let dir = temp_store("dropped");
        let (store, _) = Store::open(&dir, true, &build).unwrap();
        store.append(&create1()).unwrap();
        store
            .append(&WalRecord::CreateSession {
                session: 2,
                dataset: DatasetSpec::Inline { x_tuples: vec![vec![(1.0, 0.5)], vec![(2.0, 1.0)]] },
                probe_cost: 3,
                probe_success: 0.5,
            })
            .unwrap();
        store.append(&WalRecord::DropSession { session: 1 }).unwrap();
        let stats = store.truncate_log().unwrap();
        assert_eq!(stats.records_after, 1, "only session 2's create survives");

        drop(store);
        let (_, recovery) = Store::open(&dir, true, &build).unwrap();
        assert_eq!(recovery.sessions.len(), 1);
        assert_eq!(recovery.sessions[0].id, 2);
        assert!(matches!(recovery.sessions[0].state, RecoveredState::Idle(_)));
        // Ids never regress below what the log has seen — session 2 is
        // the highest surviving mention after compaction.
        assert!(recovery.next_session_id >= 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_the_high_water_session_id() {
        let dir = temp_store("high-water");
        let (store, _) = Store::open(&dir, true, &build).unwrap();
        store.append(&create1()).unwrap();
        store
            .append(&WalRecord::CreateSession {
                session: 2,
                dataset: DatasetSpec::Udb1,
                probe_cost: 1,
                probe_success: 0.8,
            })
            .unwrap();
        store.append(&WalRecord::DropSession { session: 2 }).unwrap();
        let stats = store.truncate_log().unwrap();
        // Session 1's create survives, plus the tombstone pinning id 2.
        assert_eq!(stats.records_after, 2);
        drop(store);
        let (_, recovery) = Store::open(&dir, true, &build).unwrap();
        assert_eq!(recovery.sessions.len(), 1);
        assert_eq!(recovery.next_session_id, 3, "ids must never regress to a dropped session's id");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_store_directory_has_exactly_one_writer() {
        let dir = temp_store("single-writer");
        let (store, _) = Store::open(&dir, true, &build).unwrap();
        let err = Store::open(&dir, true, &build).unwrap_err();
        assert!(err.to_string().contains("one writer"), "{err}");
        // The read-only peek is not a writer and stays available.
        assert!(Store::peek(&dir, &build).is_ok());
        drop(store);
        assert!(Store::open(&dir, true, &build).is_ok(), "lock released on drop");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_of_an_inconsistent_log_is_a_clean_error() {
        let dir = temp_store("inconsistent");
        let (store, _) = Store::open(&dir, true, &build).unwrap();
        // Probe for a session that was never created.
        store.append(&probe1()).unwrap();
        drop(store);
        let err = Store::open(&dir, true, &build).unwrap_err();
        assert!(matches!(err, StoreError::Replay { record: 0, .. }), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_appends_survive_reopen_exactly_like_per_record() {
        let policy = FlushPolicy::GroupCommit {
            max_batch: 8,
            max_wait: std::time::Duration::from_millis(20),
        };
        let group_dir = temp_store("group-commit");
        {
            let (store, _) = Store::open_with_policy(&group_dir, policy, &build).unwrap();
            store.append(&create1()).unwrap();
            store.append(&pt2()).unwrap();
            store.append(&probe1()).unwrap();
        }
        let per_record_dir = temp_store("group-commit-oracle");
        {
            let (store, _) =
                Store::open_with_policy(&per_record_dir, FlushPolicy::PerRecord, &build).unwrap();
            store.append(&create1()).unwrap();
            store.append(&pt2()).unwrap();
            store.append(&probe1()).unwrap();
        }

        // Both logs replay to the identical session state.
        let (_, group) = Store::open(&group_dir, true, &build).unwrap();
        let (_, oracle) = Store::open(&per_record_dir, true, &build).unwrap();
        assert_eq!(group.records, oracle.records);
        assert_eq!(group.sessions.len(), 1);
        let (g, o) = (&group.sessions[0], &oracle.sessions[0]);
        assert_eq!((g.id, g.probes), (o.id, o.probes));
        assert_eq!(g.state.database(), o.state.database());
        fs::remove_dir_all(&group_dir).ok();
        fs::remove_dir_all(&per_record_dir).ok();
    }

    #[test]
    fn group_commit_batches_concurrent_appends_into_fewer_flushes() {
        let dir = temp_store("group-commit-batching");
        let policy = FlushPolicy::GroupCommit {
            max_batch: 4,
            max_wait: std::time::Duration::from_millis(100),
        };
        let (store, _) = Store::open_with_policy(&dir, policy, &build).unwrap();
        store.append(&create1()).unwrap();

        let store = std::sync::Arc::new(store);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        store
                            .append(&WalRecord::ApplyProbe {
                                session: 1,
                                x_tuple: 0,
                                mutation: XTupleMutation::Reweight { probs: vec![0.5, 0.5] },
                            })
                            .unwrap();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }

        let flushes = store.flushes();
        assert!(flushes > 0, "the flusher ran");
        assert!(flushes < 65, "65 appends batched into {flushes} flushes");
        assert_eq!(store.records(), 65);

        // Every acknowledged append survives a reopen.
        drop(store);
        let (_, recovery) = Store::open(&dir, true, &build).unwrap();
        assert_eq!(recovery.records, 65);
        assert_eq!(recovery.sessions[0].probes, 64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_interoperates_with_compaction() {
        let dir = temp_store("group-commit-compaction");
        let policy = FlushPolicy::GroupCommit {
            max_batch: 8,
            max_wait: std::time::Duration::from_millis(20),
        };
        let (store, _) = Store::open_with_policy(&dir, policy, &build).unwrap();
        store.append(&create1()).unwrap();
        store.append(&pt2()).unwrap();
        store.append(&probe1()).unwrap();
        let mut live = BatchQuality::from_owned(
            udb1(),
            vec![WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 })],
        )
        .unwrap();
        live.apply_collapse_in_place(2, &XTupleMutation::CollapseToAlternative { keep_pos: 2 })
            .unwrap();
        store
            .checkpoint(&SessionCheckpoint {
                session: 1,
                db: live.database().clone(),
                specs: vec![WeightedQuery::new(TopKQuery::PTk { k: 2, threshold: 0.4 })],
                probe_cost: 1,
                probe_success: 0.8,
                probes: 1,
            })
            .unwrap();
        let stats = store.truncate_log().unwrap();
        assert_eq!(stats.records_after, 1, "checkpoint survives");
        // Appends keep working (and keep being acknowledged) after the
        // rewrite advanced the synced watermark.
        store
            .append(&WalRecord::ApplyProbe {
                session: 1,
                x_tuple: 0,
                mutation: XTupleMutation::Reweight { probs: vec![0.5, 0.5] },
            })
            .unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir, true, &build).unwrap();
        assert_eq!(recovery.sessions[0].probes, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_rejects_an_empty_batch_bound() {
        let dir = temp_store("group-commit-zero");
        let policy = FlushPolicy::GroupCommit {
            max_batch: 0,
            max_wait: std::time::Duration::from_millis(1),
        };
        let err = Store::open_with_policy(&dir, policy, &build).unwrap_err();
        assert!(err.to_string().contains("max_batch"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_seq_never_reuses_names_across_reopens() {
        let dir = temp_store("seq");
        let checkpoint = SessionCheckpoint {
            session: 1,
            db: udb1(),
            specs: Vec::new(),
            probe_cost: 1,
            probe_success: 0.8,
            probes: 0,
        };
        let (store, _) = Store::open(&dir, true, &build).unwrap();
        store.append(&create1()).unwrap();
        let first = store.checkpoint(&checkpoint).unwrap();
        drop(store);
        let (store, _) = Store::open(&dir, true, &build).unwrap();
        let second = store.checkpoint(&checkpoint).unwrap();
        assert_ne!(first, second);
        fs::remove_dir_all(&dir).ok();
    }
}
