//! The consistent-hash router: one listener speaking the existing wire
//! protocol, forwarding every request to the shard process that owns it.
//!
//! Every protocol verb has an explicit routing decision (pdb-analyze's
//! `protocol-drift` lint checks this table against the protocol's verb
//! set, so a new verb cannot silently fall through):
//!
//! | Verb | Routing |
//! |------|---------|
//! | `create_session` | router assigns a fleet-wide id, pins it into the request, routes by ring |
//! | `register_query` | by session id over the ring |
//! | `evaluate` | by session id over the ring |
//! | `quality` | by session id over the ring |
//! | `recommend_probe` | by session id over the ring |
//! | `apply_mutation` | by session id over the ring |
//! | `apply_probe` | by session id over the ring |
//! | `drop_session` | by session id over the ring |
//! | `persist` | by session id over the ring |
//! | `restore` | router assigns a fleet-wide id (like `create_session`) |
//! | `fetch_chunk` | by the session id embedded in the snapshot name |
//! | `stats` | broadcast to every shard, replies merged |
//! | `metrics` | broadcast to every shard, snapshots merged with the router's own |
//! | `shutdown` | broadcast to every shard, then the router stops |
//!
//! The router holds no session state of its own — only the id allocator
//! and the ring — so it never becomes a second consistency domain: a
//! session lives exactly where the ring says, and the shard's WAL is the
//! only durability story.  Forwarding **never panics on a malformed
//! shard reply**: every decode failure becomes an `{"error": ...}` line
//! for the client, and the poisoned connection is dropped.

use crate::fleet::Fleet;
use crate::ring::HashRing;
use pdb_obs::snapshot::MetricsSnapshot;
use pdb_server::protocol::{self, MetricsReply, ServerStats};
use pdb_server::{Client, ClientError, Request, Response, RetryPolicy};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How often an idle router connection wakes from a blocked read to
/// re-check the shutdown flag (same rationale as pdb-server's drain).
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// Forward attempts per request: the first try plus one retry after the
/// shard was respawned.  More would stall the client behind a shard that
/// is genuinely gone.
const FORWARD_ATTEMPTS: usize = 2;

/// State shared by every router connection thread.
struct RouterShared {
    fleet: Arc<Fleet>,
    ring: HashRing,
    /// Fleet-wide session id allocator: the router pins an id into every
    /// `create_session` / `restore` it forwards, so ids are unique across
    /// shards and the ring can route by them.
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// Connect attempts beyond the first across every shard connection
    /// the router ever made (surfaced as `connect_retries` in merged
    /// stats).
    connect_retries: AtomicU64,
    /// Per-shard connect policy.
    retry: RetryPolicy,
}

/// A bound (but not yet running) fleet router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Bind the router over a spawned fleet.  The session-id allocator
    /// is seeded past every session the shards recovered from their
    /// stores, so new ids never collide with rehydrated ones.
    pub fn bind(addr: &str, fleet: Arc<Fleet>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let retry = RetryPolicy::default();
        let shared = RouterShared {
            ring: HashRing::with_default_replicas(fleet.len()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            connect_retries: AtomicU64::new(0),
            retry,
            fleet,
        };
        shared.seed_next_id();
        Ok(Self { listener, shared: Arc::new(shared) })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and route connections until a `shutdown` request arrives,
    /// then drain and return.  One thread per connection: the router
    /// does no evaluation work of its own, so a connection's thread is
    /// almost always parked on I/O and a pool would only add queueing.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut handles = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the self-wake (or a raced client) is dropped
            }
            match conn {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    handles
                        .push(std::thread::spawn(move || handle_connection(stream, &shared, addr)));
                }
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            }
        }
        for handle in handles {
            // pdb-analyze: allow(error-swallow): join only errs if the connection thread panicked; drain the rest regardless
            let _ = handle.join();
        }
        Ok(())
    }
}

impl RouterShared {
    /// Seed the id allocator from the shards' recovered sessions.
    fn seed_next_id(&self) {
        let mut clients = HashMap::new();
        let mut max_seen = 0;
        for shard in self.ring.shards() {
            if let Response::Stats(stats) = self.forward(&mut clients, shard, &Request::Stats) {
                max_seen = stats.sessions.iter().map(|s| s.session).fold(max_seen, u64::max);
            }
        }
        self.next_id.store(max_seen + 1, Ordering::Relaxed);
    }

    /// The shard owning `session` (the ring is never empty: a fleet has
    /// at least one shard).
    fn shard_of(&self, session: u64) -> usize {
        self.ring.shard_for(session).unwrap_or(0)
    }

    /// A connected client for `shard`, creating (and caching) one if the
    /// connection map has none.  `ensure` first: a dead shard is
    /// respawned — and recovers its WAL — before the connect.
    fn client_for<'a>(
        &self,
        clients: &'a mut HashMap<usize, Client>,
        shard: usize,
    ) -> Result<&'a mut Client, std::io::Error> {
        match clients.entry(shard) {
            Entry::Occupied(entry) => Ok(entry.into_mut()),
            Entry::Vacant(entry) => {
                let addr = self.fleet.ensure(shard)?;
                let client = Client::connect_with(addr, &self.retry)?;
                self.connect_retries.fetch_add(client.connect_retries(), Ordering::Relaxed);
                Ok(entry.insert(client))
            }
        }
    }

    /// Forward one request to `shard`, retrying once through a respawn
    /// when the connection died.  A retry can re-send a request the dead
    /// shard already applied *and journalled*, so callers needing
    /// exactly-once during a crash window send idempotent mutations
    /// (e.g. `reweight`) — the router guarantees no *loss*, not
    /// de-duplication.
    fn forward(
        &self,
        clients: &mut HashMap<usize, Client>,
        shard: usize,
        request: &Request,
    ) -> Response {
        // Shards past the fixed label set share the "other" cell; the
        // last SHARD_LABELS entry *is* "other", so indexing covers both.
        let label = pdb_obs::metrics::SHARD_LABELS.get(shard).copied().unwrap_or("other");
        let _span = pdb_obs::metrics::FLEET_FORWARD_LATENCY_NS.with(label).span();
        let mut last_io = None;
        for attempt in 0..FORWARD_ATTEMPTS {
            if attempt > 0 {
                pdb_obs::metrics::FLEET_RETRIES_TOTAL.inc();
            }
            let client = match self.client_for(clients, shard) {
                Ok(client) => client,
                Err(err) => {
                    last_io = Some(err.to_string());
                    continue;
                }
            };
            match client.call(request) {
                Ok(response) => return response,
                Err(ClientError::Io(err)) => {
                    // The connection died mid-call; the shard may be
                    // gone.  Drop the cached connection and let the next
                    // attempt respawn + reconnect.
                    clients.remove(&shard);
                    last_io = Some(err.to_string());
                }
                Err(ClientError::Protocol(msg)) => {
                    // The shard replied bytes that do not parse: the
                    // stream position is unknowable, so the connection
                    // is poisoned.  Surface a clean error — never panic.
                    clients.remove(&shard);
                    return Response::error(format!("shard {shard} replied malformed: {msg}"));
                }
                Err(ClientError::Server(msg)) => {
                    return Response::error(format!("shard {shard}: {msg}"))
                }
            }
        }
        Response::error(format!(
            "shard {shard} is unavailable: {}",
            last_io.unwrap_or_else(|| "no forward attempts".to_string())
        ))
    }

    /// Broadcast `stats` and merge the replies: counters sum, session
    /// lists concatenate (sorted by id), `durable` holds only if every
    /// shard journals, and `shards` reports the *fleet's* shard count.
    fn merged_stats(&self, clients: &mut HashMap<usize, Client>) -> Response {
        let mut merged = ServerStats {
            sessions_live: 0,
            sessions_created: 0,
            requests_served: 0,
            probes_applied: 0,
            shards: self.ring.len(),
            threads: 0,
            durable: true,
            connect_retries: self.connect_retries.load(Ordering::Relaxed),
            flush_error: None,
            sessions: Vec::new(),
        };
        for shard in self.ring.shards() {
            match self.forward(clients, shard, &Request::Stats) {
                Response::Stats(stats) => {
                    merged.sessions_live += stats.sessions_live;
                    merged.sessions_created += stats.sessions_created;
                    merged.requests_served += stats.requests_served;
                    merged.probes_applied += stats.probes_applied;
                    merged.threads += stats.threads;
                    merged.durable &= stats.durable;
                    merged.connect_retries += stats.connect_retries;
                    if merged.flush_error.is_none() {
                        if let Some(err) = stats.flush_error {
                            // First degraded shard wins; name it so the
                            // operator knows where to look.
                            merged.flush_error = Some(format!("shard {shard}: {err}"));
                        }
                    }
                    merged.sessions.extend(stats.sessions);
                }
                Response::Error(reply) => {
                    return Response::error(format!(
                        "stats from shard {shard} failed: {}",
                        reply.message
                    ))
                }
                other => {
                    return Response::error(format!(
                        "stats from shard {shard} returned {:?}",
                        other.kind()
                    ))
                }
            }
        }
        merged.sessions.sort_by_key(|s| s.session);
        Response::Stats(merged)
    }

    /// Broadcast `metrics` and merge every shard's snapshot with the
    /// router's own series (forward latency, retries, respawns, ring
    /// remaps).  The merge is associative and order-canonical, so the
    /// result is identical no matter which shard replies first.
    fn merged_metrics(&self, clients: &mut HashMap<usize, Client>) -> Response {
        let mut merged = MetricsSnapshot::default();
        for shard in self.ring.shards() {
            match self.forward(clients, shard, &Request::Metrics) {
                Response::Metrics(reply) => match reply.to_snapshot() {
                    Ok(snapshot) => merged.merge(&snapshot),
                    Err(err) => {
                        return Response::error(format!(
                            "metrics from shard {shard} do not merge: {err}"
                        ))
                    }
                },
                Response::Error(reply) => {
                    return Response::error(format!(
                        "metrics from shard {shard} failed: {}",
                        reply.message
                    ))
                }
                other => {
                    return Response::error(format!(
                        "metrics from shard {shard} returned {:?}",
                        other.kind()
                    ))
                }
            }
        }
        merged.merge(&pdb_obs::metrics::snapshot());
        Response::Metrics(MetricsReply::from(merged))
    }

    /// Route one request (see the module-level table).
    fn dispatch(
        &self,
        mut request: Request,
        clients: &mut HashMap<usize, Client>,
        router_addr: SocketAddr,
    ) -> Response {
        let target = match &mut request {
            Request::CreateSession(req) => {
                let id = self.pin_id(&mut req.session);
                self.shard_of(id)
            }
            Request::Restore(req) => {
                let id = self.pin_id(&mut req.session);
                self.shard_of(id)
            }
            Request::RegisterQuery(req) => self.shard_of(req.session),
            Request::Evaluate(req)
            | Request::Quality(req)
            | Request::RecommendProbe(req)
            | Request::DropSession(req)
            | Request::Persist(req) => self.shard_of(req.session),
            Request::ApplyMutation(req) | Request::ApplyProbe(req) => self.shard_of(req.session),
            Request::FetchChunk(req) => match snapshot_session(&req.snapshot) {
                Some(session) => self.shard_of(session),
                None => {
                    return Response::error(format!(
                        "cannot route fetch_chunk: {:?} is not a persist-produced snapshot name",
                        req.snapshot
                    ))
                }
            },
            Request::Stats => return self.merged_stats(clients),
            Request::Metrics => return self.merged_metrics(clients),
            Request::Shutdown => {
                self.fleet.shutdown();
                self.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag (same
                // self-wake pattern as pdb-server).
                // pdb-analyze: allow(error-swallow): best-effort self-wake; raced clients also break the loop
                let _ = TcpStream::connect(router_addr);
                return Response::ShuttingDown;
            }
        };
        self.forward(clients, target, &request)
    }

    /// Assign a fleet-wide session id if the request has none, and pin
    /// it into the request so the shard honors it.
    fn pin_id(&self, session: &mut Option<u64>) -> u64 {
        match *session {
            Some(id) => {
                // A client-pinned id still bumps the allocator past it.
                self.next_id.fetch_max(id + 1, Ordering::Relaxed);
                id
            }
            None => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                *session = Some(id);
                id
            }
        }
    }
}

/// The session id a persist-produced snapshot name embeds
/// (`snapshot-<sid>-<seq>.pdbs`), used to route `fetch_chunk`.
fn snapshot_session(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".pdbs")?.split_once('-')?.0.parse().ok()
}

/// Serve one router connection: one response line per request line.
/// Mirrors pdb-server's read loop (timeout polling, partial-line
/// reassembly) so persistent clients behave identically against a
/// router and a single server.
fn handle_connection(stream: TcpStream, shared: &RouterShared, router_addr: SocketAddr) {
    // pdb-analyze: allow(error-swallow): latency knob only; correctness does not depend on it
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    // Shard connections are per-router-connection: one client's requests
    // flow down one TCP stream per shard, so replies can never interleave
    // across router connections.
    let mut clients: HashMap<usize, Client> = HashMap::new();

    loop {
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => break,
                Err(err)
                    if matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::decode_request(line.trim_end()) {
            Ok(request) => shared.dispatch(request, &mut clients, router_addr),
            Err(err) => Response::error(format!("malformed request: {err}")),
        };
        let payload = protocol::encode(&response).unwrap_or_else(|err| {
            format!("{{\"error\":{{\"message\":\"encoding failed: {err}\"}}}}")
        });
        if writeln!(writer, "{payload}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_route_by_embedded_session_id() {
        assert_eq!(snapshot_session("snapshot-7-12.pdbs"), Some(7));
        assert_eq!(snapshot_session("snapshot-123-4.pdbs"), Some(123));
        assert_eq!(snapshot_session("snapshot-x-4.pdbs"), None);
        assert_eq!(snapshot_session("snapshot-7.pdbs"), None);
        assert_eq!(snapshot_session("../../etc/passwd"), None);
        assert_eq!(snapshot_session(""), None);
    }
}
