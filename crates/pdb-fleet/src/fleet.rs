//! The shard-process supervisor.
//!
//! A [`Fleet`] spawns N `pdb serve` shard processes (each a full
//! [`pdb_server::Server`] with its own store directory and WAL), parses
//! their readiness lines to learn the ephemeral addresses they bound, and
//! can respawn a shard that died — the respawn reuses the shard's store
//! directory, so WAL replay rehydrates every journalled session before
//! the shard accepts its first forwarded request.  That recovery path is
//! what makes the router's failover lossless for acknowledged probes.
//!
//! The supervisor deliberately runs *processes*, not threads: the point
//! of the fleet is that one shard can be SIGKILLed (or OOM-killed, or
//! segfault) without taking the others down, which no amount of
//! in-process sharding provides.

use pdb_server::protocol::SessionCreated;
use pdb_server::{Client, RetryPolicy};
use pdb_store::FlushPolicy;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

/// The readiness line prefix every shard (a plain `pdb serve`) prints
/// once its listener is bound.
pub const SHARD_READY_PREFIX: &str = "pdb-server listening on ";

/// How a [`Fleet`] spawns its shard processes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The `pdb` binary to spawn shards with (the CLI passes its own
    /// `current_exe`; tests pass `CARGO_BIN_EXE_pdb`).
    pub program: PathBuf,
    /// Shard processes to run.
    pub shards: usize,
    /// Worker threads per shard process.
    pub threads: usize,
    /// Base store directory; shard `i` journals into `<dir>/shard-<i>`.
    /// `None` runs shards in memory — a killed shard then loses its
    /// sessions on respawn, so durability-sensitive fleets set this.
    pub store_dir: Option<PathBuf>,
    /// Per-shard auto-compaction threshold (0 disables).
    pub compact_every: u64,
    /// Per-shard journal flush policy.
    pub flush: FlushPolicy,
}

impl FleetConfig {
    /// The `pdb serve` argument vector for shard `index`.
    fn shard_args(&self, index: usize) -> Vec<String> {
        let mut args = vec![
            "serve".to_string(),
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--threads".to_string(),
            self.threads.max(1).to_string(),
            "--compact-every".to_string(),
            self.compact_every.to_string(),
        ];
        if let Some(base) = &self.store_dir {
            args.push("--store-dir".to_string());
            args.push(base.join(format!("shard-{index}")).display().to_string());
        }
        match self.flush {
            FlushPolicy::PerRecord => {}
            FlushPolicy::GroupCommit { max_batch, max_wait } => {
                args.extend([
                    "--flush".to_string(),
                    "group-commit".to_string(),
                    "--flush-batch".to_string(),
                    max_batch.to_string(),
                    "--flush-wait-ms".to_string(),
                    max_wait.as_millis().to_string(),
                ]);
            }
        }
        args
    }
}

/// One live (or recently dead) shard process.
#[derive(Debug)]
struct ShardHandle {
    child: Child,
    addr: SocketAddr,
    /// Respawns this slot has seen (0 for the original process).
    respawns: u64,
}

/// A snapshot of one shard's state for `fleet status` and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index (also the ring identity).
    pub index: usize,
    /// OS pid of the current process serving this shard.
    pub pid: u32,
    /// Address the shard bound.
    pub addr: SocketAddr,
    /// Respawns this slot has seen.
    pub respawns: u64,
}

/// A supervised set of shard processes.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<Mutex<ShardHandle>>,
}

impl Fleet {
    /// Spawn every shard and wait for each to announce readiness.  Any
    /// shard failing to come up kills the ones already running.
    pub fn spawn(config: FleetConfig) -> std::io::Result<Self> {
        if config.shards == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a fleet needs at least 1 shard",
            ));
        }
        let mut shards = Vec::with_capacity(config.shards);
        for index in 0..config.shards {
            match spawn_shard(&config, index) {
                Ok((child, addr)) => {
                    shards.push(Mutex::new(ShardHandle { child, addr, respawns: 0 }))
                }
                Err(err) => {
                    for handle in &shards {
                        kill_handle(&mut lock(handle));
                    }
                    return Err(err);
                }
            }
        }
        Ok(Self { config, shards })
    }

    /// Number of shard slots.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet has no shards (never true after `spawn`).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The address currently serving `shard`.
    pub fn addr(&self, shard: usize) -> std::io::Result<SocketAddr> {
        Ok(lock(self.slot(shard)?).addr)
    }

    /// Every shard's current pid/address/respawn count, by index.
    pub fn statuses(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, slot)| {
                let handle = lock(slot);
                ShardStatus {
                    index,
                    pid: handle.child.id(),
                    addr: handle.addr,
                    respawns: handle.respawns,
                }
            })
            .collect()
    }

    /// Make sure `shard` is being served, respawning its process if it
    /// died.  The respawn reuses the shard's store directory, so every
    /// journalled session is recovered (WAL replay) before the new
    /// process accepts a connection.  Returns the (possibly new) address.
    pub fn ensure(&self, shard: usize) -> std::io::Result<SocketAddr> {
        let mut handle = lock(self.slot(shard)?);
        match handle.child.try_wait() {
            Ok(None) => Ok(handle.addr), // still running
            // Exited (or unknowable): respawn into the same slot.
            Ok(Some(_)) | Err(_) => {
                let (child, addr) = spawn_shard(&self.config, shard)?;
                pdb_obs::metrics::FLEET_RESPAWNS_TOTAL.inc();
                if addr != handle.addr {
                    // The slot's address moved: every ring entry for this
                    // shard now resolves somewhere new.
                    pdb_obs::metrics::FLEET_RING_REMAPS_TOTAL.inc();
                }
                handle.child = child;
                handle.addr = addr;
                handle.respawns += 1;
                Ok(addr)
            }
        }
    }

    /// Ask every shard to drain and stop, then reap the processes.  A
    /// shard that cannot be reached (already dead, or refusing) is
    /// killed instead — shutdown must terminate the fleet either way.
    pub fn shutdown(&self) {
        for slot in &self.shards {
            let mut handle = lock(slot);
            let polite = Client::connect_with(
                handle.addr,
                &RetryPolicy {
                    connect_timeout: std::time::Duration::from_millis(500),
                    attempts: 1,
                    base_backoff: std::time::Duration::from_millis(1),
                },
            )
            .map_err(|_| ())
            .and_then(|mut client| client.shutdown().map_err(|_| ()));
            if polite.is_err() {
                kill_handle(&mut handle);
            }
            // pdb-analyze: allow(error-swallow): reaping a shard that already exited errs harmlessly
            let _ = handle.child.wait();
        }
    }

    fn slot(&self, shard: usize) -> std::io::Result<&Mutex<ShardHandle>> {
        self.shards.get(shard).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("no shard {shard} in a fleet of {}", self.shards.len()),
            )
        })
    }
}

impl Drop for Fleet {
    /// Last-resort cleanup: never leak shard processes.  A graceful
    /// [`shutdown`](Self::shutdown) beforehand makes this a no-op (the
    /// children are already reaped).
    fn drop(&mut self) {
        for slot in &self.shards {
            kill_handle(&mut lock(slot));
        }
    }
}

/// Lock a shard slot, recovering from poisoning: the slot only guards a
/// `Child` + address pair, which a panicking thread cannot leave torn in
/// any way that matters more than losing the whole shard would.
fn lock(slot: &Mutex<ShardHandle>) -> std::sync::MutexGuard<'_, ShardHandle> {
    slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn kill_handle(handle: &mut ShardHandle) {
    // pdb-analyze: allow(error-swallow): the process may already be dead, which is the goal
    let _ = handle.child.kill();
    // pdb-analyze: allow(error-swallow): reap only; the exit status of a killed shard carries no signal
    let _ = handle.child.wait();
}

/// Spawn one shard process and wait for its readiness line.
fn spawn_shard(config: &FleetConfig, index: usize) -> std::io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(&config.program)
        .args(config.shard_args(index))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "shard stdout was not captured")
    })?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            kill_handle(&mut ShardHandle { child, addr: ([127, 0, 0, 1], 0).into(), respawns: 0 });
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("shard {index} exited before announcing readiness"),
            ));
        }
        if let Some(rest) = line.trim().strip_prefix(SHARD_READY_PREFIX) {
            let addr = rest.split_whitespace().next().unwrap_or("").parse().map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("shard {index} announced an unparsable address: {}", line.trim()),
                )
            })?;
            // Keep draining the pipe so the shard never blocks on a full
            // stdout buffer; the drain thread dies with the process.
            std::thread::spawn(move || {
                let mut sink = Vec::new();
                // pdb-analyze: allow(error-swallow): a broken pipe here just means the shard exited
                let _ = reader.read_to_end(&mut sink);
            });
            return Ok((child, addr));
        }
        // Anything before the readiness line (e.g. the recovery summary)
        // is informational; keep reading.
    }
}

/// Why a peer-streaming rehydrate failed.
#[derive(Debug)]
pub enum StreamError {
    /// A protocol call against the source or destination shard failed
    /// (includes chunk checksum mismatches — the client verifies every
    /// chunk before handing bytes up).
    Client(pdb_server::ClientError),
    /// Writing the downloaded snapshot into the scratch directory failed.
    Scratch(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Client(err) => write!(f, "streaming snapshot: {err}"),
            StreamError::Scratch(err) => write!(f, "writing streamed snapshot: {err}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<pdb_server::ClientError> for StreamError {
    fn from(err: pdb_server::ClientError) -> Self {
        StreamError::Client(err)
    }
}

/// Rehydrate one session from a live peer over the wire: `persist` on
/// the source shard, stream the snapshot down in verified chunks, write
/// it into `scratch_dir`, and `restore` it on the destination shard
/// under the *same* session id.  No shared disk between the two stores
/// is required — the snapshot bytes travel through the protocol.
///
/// `probe_cost` / `probe_success` re-parameterize the restored session
/// (snapshots persist the database, not the cleaning parameters).
pub fn stream_session(
    src: &mut Client,
    dst: &mut Client,
    session: u64,
    scratch_dir: &std::path::Path,
    probe_cost: u64,
    probe_success: f64,
) -> Result<SessionCreated, StreamError> {
    use pdb_server::protocol::{Request, RestoreSession};
    use pdb_server::Response;

    let persisted = src.persist(session)?;
    let bytes = src.download_snapshot(&persisted.snapshot, 1 << 20)?;
    std::fs::create_dir_all(scratch_dir).map_err(StreamError::Scratch)?;
    let local = scratch_dir.join(&persisted.snapshot);
    std::fs::write(&local, &bytes).map_err(StreamError::Scratch)?;
    let request = Request::Restore(RestoreSession {
        snapshot: local.display().to_string(),
        probe_cost,
        probe_success,
        session: Some(session),
    });
    match dst.call(&request)? {
        Response::SessionCreated(created) => Ok(created),
        Response::Error(reply) => Err(pdb_server::ClientError::Server(reply.message).into()),
        other => Err(pdb_server::ClientError::Protocol(format!(
            "expected session_created, got {:?}",
            other.kind()
        ))
        .into()),
    }
}
