//! # pdb-fleet — multi-process scale-out for the cleaning service
//!
//! The paper's cleaning sessions are embarrassingly partitionable by
//! session id, and `pdb-server` already shards them across in-process
//! locks.  This crate adds the missing *fleet* layer: many shard
//! **processes**, one thin router, and nothing shared between shards but
//! the wire protocol.
//!
//! * [`ring`] — a consistent-hash ring with virtual nodes over the same
//!   SplitMix64 mixer the in-process shard map uses: adding or removing
//!   a shard remaps only ~`1/N` of session ids;
//! * [`fleet`] — the shard-process supervisor: spawns N `pdb serve`
//!   processes (each with its own store directory and WAL), respawns a
//!   dead shard (WAL replay rehydrates its sessions), and streams
//!   snapshots between live peers ([`fleet::stream_session`]) so a fresh
//!   replica needs no shared disk;
//! * [`router`] — the router: accepts the *existing* wire protocol,
//!   pins fleet-wide session ids into `create_session` / `restore`,
//!   forwards each request to the ring-owning shard, merges `stats`
//!   across shards, and fails over (respawn + bounded retry) when a
//!   shard dies mid-traffic — never panicking on a malformed reply.
//!
//! `pdb fleet serve --shards N` wires all three together; the
//! `fleet_kill_and_recover` test SIGKILLs a shard of a live fleet under
//! concurrent traffic and asserts zero acknowledged probes are lost.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fleet;
pub mod ring;
pub mod router;

pub use fleet::{stream_session, Fleet, FleetConfig, ShardStatus, StreamError, SHARD_READY_PREFIX};
pub use ring::{HashRing, DEFAULT_REPLICAS};
pub use router::Router;
