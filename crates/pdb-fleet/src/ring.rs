//! Consistent hashing over session ids.
//!
//! The in-process [`pdb_server::SessionManager`] hashes a session id
//! straight to `hash % shards` — fine inside one process, where
//! "resharding" never happens.  Across *processes* that scheme is fatal:
//! growing a fleet from N to N+1 shards would remap almost every session
//! to a different process.  A [`HashRing`] generalizes the same SplitMix64
//! mixer to a ring with virtual nodes: each shard owns `replicas` points
//! on a `u64` circle, and a key belongs to the first point clockwise of
//! its own hash.  Adding or removing one shard then moves only the keys
//! in the arcs that shard's points cover — about `1/N` of them — and the
//! virtual nodes keep each shard's total arc length balanced.
//!
//! The ring is deliberately dumb about *what* the shards are: it maps
//! `u64` keys to `usize` shard indices and nothing else.  The router owns
//! the index → address mapping.

use std::collections::BTreeSet;

/// Virtual nodes per shard when callers have no reason to pick a
/// different trade-off (more points → tighter balance, larger ring).
pub const DEFAULT_REPLICAS: usize = 64;

/// A consistent-hash ring mapping `u64` keys to shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points, sorted by point hash: `(point, shard)`.
    points: Vec<(u64, usize)>,
    /// Shards currently on the ring.
    shards: BTreeSet<usize>,
    /// Virtual nodes per shard.
    replicas: usize,
}

/// SplitMix64 — the same mixer `SessionManager::shard_of` uses, so the
/// ring inherits its (well-studied) avalanche behavior.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The ring point of virtual node `replica` of `shard`: shard and
/// replica are packed into one word and mixed, so every virtual node
/// lands somewhere independent.
fn point_of(shard: usize, replica: usize) -> u64 {
    mix(((shard as u64) << 32) ^ replica as u64 ^ 0x7064_6272 /* "pdbr" */)
}

impl HashRing {
    /// A ring over shards `0..shards` with `replicas` virtual nodes each
    /// (`replicas` clamped to at least 1).
    pub fn new(shards: usize, replicas: usize) -> Self {
        let mut ring =
            Self { points: Vec::new(), shards: BTreeSet::new(), replicas: replicas.max(1) };
        for shard in 0..shards {
            ring.add_shard(shard);
        }
        ring
    }

    /// A ring over shards `0..shards` with [`DEFAULT_REPLICAS`] virtual
    /// nodes each.
    pub fn with_default_replicas(shards: usize) -> Self {
        Self::new(shards, DEFAULT_REPLICAS)
    }

    /// Put `shard`'s virtual nodes on the ring (a no-op if present).
    pub fn add_shard(&mut self, shard: usize) {
        if !self.shards.insert(shard) {
            return;
        }
        for replica in 0..self.replicas {
            let point = (point_of(shard, replica), shard);
            let at = self.points.partition_point(|p| *p < point);
            self.points.insert(at, point);
        }
    }

    /// Take `shard`'s virtual nodes off the ring (a no-op if absent).
    pub fn remove_shard(&mut self, shard: usize) {
        if self.shards.remove(&shard) {
            self.points.retain(|&(_, s)| s != shard);
        }
    }

    /// The shard owning `key`: the first ring point clockwise of the
    /// key's hash (wrapping past the top).  `None` only on an empty ring.
    pub fn shard_for(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hashed = mix(key);
        let at = self.points.partition_point(|&(point, _)| point < hashed);
        // pdb-analyze: allow(panic-path): at <= len and the ring is non-empty, so the wrapped index is in range
        let (_, shard) = self.points[if at == self.points.len() { 0 } else { at }];
        Some(shard)
    }

    /// Shards currently on the ring, ascending.
    pub fn shards(&self) -> impl Iterator<Item = usize> + '_ {
        self.shards.iter().copied()
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_consistently_and_only_to_live_shards() {
        let ring = HashRing::with_default_replicas(4);
        for key in 0..1000 {
            let shard = ring.shard_for(key).unwrap();
            assert!(shard < 4);
            assert_eq!(ring.shard_for(key), Some(shard), "routing is deterministic");
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let mut ring = HashRing::new(0, 8);
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for(7), None);
        ring.add_shard(2);
        assert_eq!(ring.shard_for(7), Some(2), "a single shard owns everything");
        ring.remove_shard(2);
        assert_eq!(ring.shard_for(7), None);
    }

    #[test]
    fn add_and_remove_round_trip_exactly() {
        let reference = HashRing::new(5, 16);
        let mut ring = HashRing::new(5, 16);
        ring.remove_shard(3);
        ring.add_shard(3);
        assert_eq!(ring.points, reference.points, "re-adding rebuilds the identical ring");
        ring.add_shard(3);
        assert_eq!(ring.points.len(), 5 * 16, "double add is a no-op");
    }
}
