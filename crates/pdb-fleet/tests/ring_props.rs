//! Property suite for the consistent-hash ring: the two guarantees the
//! fleet leans on are *balance* (no shard owns a grossly oversized share
//! of the key space) and *minimal remapping* (growing or shrinking the
//! fleet by one shard moves only about `1/N` of the keys).  Both are
//! checked over randomized shard counts, replica counts and key sets —
//! a plain `hash % shards` scheme passes the balance property and fails
//! remapping catastrophically, which is exactly why the ring exists.

use pdb_fleet::HashRing;
use proptest::collection::vec;
use proptest::prelude::*;

/// Route every key, returning per-shard ownership counts indexed by
/// shard id.
fn ownership(ring: &HashRing, shards: usize, keys: &[u64]) -> Vec<usize> {
    let mut counts = vec![0usize; shards];
    for &key in keys {
        counts[ring.shard_for(key).expect("non-empty ring routes every key")] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key routes, deterministically, to a shard that is actually
    /// on the ring — across arbitrary replica counts (including the
    /// degenerate `replicas = 0`, which the ring clamps to 1).
    #[test]
    fn routing_is_total_deterministic_and_live(
        shards in 1usize..9,
        replicas in 0usize..96,
        keys in vec(any::<u64>(), 1..200),
    ) {
        let ring = HashRing::new(shards, replicas);
        for &key in &keys {
            let owner = ring.shard_for(key);
            prop_assert!(matches!(owner, Some(s) if s < shards), "key {key} routed to {owner:?}");
            prop_assert_eq!(ring.shard_for(key), owner, "routing must be deterministic");
        }
    }

    /// Balance: with the default virtual-node count, no shard's share of
    /// a large uniform key set strays too far from the fair `1/N`.  The
    /// bound is loose — consistent hashing trades perfect balance for
    /// cheap resharding — but it rules out the failure mode that matters
    /// (one shard owning a constant fraction regardless of N).
    #[test]
    fn default_replicas_keep_ownership_balanced(
        shards in 2usize..9,
        seed in any::<u64>(),
    ) {
        const KEYS: u64 = 20_000;
        let ring = HashRing::with_default_replicas(shards);
        let keys: Vec<u64> = (0..KEYS).map(|i| seed.wrapping_add(i)).collect();
        let counts = ownership(&ring, shards, &keys);
        let fair = KEYS as f64 / shards as f64;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                (count as f64) < 2.5 * fair,
                "shard {shard} owns {count} of {KEYS} keys (fair share {fair:.0})"
            );
            prop_assert!(count > 0, "shard {shard} owns nothing");
        }
    }

    /// Minimal remapping, join direction: adding shard N to an N-shard
    /// ring may only move keys *onto* the new shard — a key that stays on
    /// an old shard stays on the *same* old shard — and the moved
    /// fraction is about `1/(N+1)`, not the `N/(N+1)` a modulo scheme
    /// would pay.
    #[test]
    fn adding_a_shard_remaps_only_its_own_arc(
        shards in 1usize..8,
        seed in any::<u64>(),
    ) {
        const KEYS: u64 = 20_000;
        let before = HashRing::with_default_replicas(shards);
        let mut after = before.clone();
        after.add_shard(shards);

        let mut moved = 0u64;
        for i in 0..KEYS {
            let key = seed.wrapping_add(i);
            let old = before.shard_for(key).expect("non-empty");
            let new = after.shard_for(key).expect("non-empty");
            if new != old {
                prop_assert_eq!(new, shards, "key {} moved between two old shards", key);
                moved += 1;
            }
        }
        // Expected share is 1/(N+1); allow generous slack for virtual-node
        // variance while staying far below the 2/(N+1) that would signal
        // arcs being stolen from more than one shard's fair share.
        let expected = KEYS as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) < 2.0 * expected,
            "{moved} of {KEYS} keys moved; fair share {expected:.0}"
        );
    }

    /// Minimal remapping, leave direction: removing a shard moves
    /// exactly the keys it owned — every survivor keeps its owner, and
    /// the orphaned keys scatter across the remaining shards rather than
    /// piling onto one successor.
    #[test]
    fn removing_a_shard_strands_no_survivor(
        shards in 2usize..9,
        victim_seed in any::<usize>(),
        seed in any::<u64>(),
    ) {
        const KEYS: u64 = 20_000;
        let victim = victim_seed % shards;
        let before = HashRing::with_default_replicas(shards);
        let mut after = before.clone();
        after.remove_shard(victim);

        let mut orphans = 0u64;
        for i in 0..KEYS {
            let key = seed.wrapping_add(i);
            let old = before.shard_for(key).expect("non-empty");
            let new = after.shard_for(key).expect("still non-empty");
            if old == victim {
                prop_assert!(new != victim, "key {} still routes to the removed shard", key);
                orphans += 1;
            } else {
                prop_assert_eq!(new, old, "surviving key {} changed owner", key);
            }
        }
        let expected = KEYS as f64 / shards as f64;
        prop_assert!(
            (orphans as f64) < 2.5 * expected,
            "removed shard owned {orphans} of {KEYS} keys (fair share {expected:.0})"
        );
    }

    /// Join/leave round trip: removing the shard that was just added
    /// restores the exact original routing for every key.
    #[test]
    fn join_then_leave_is_identity(
        shards in 1usize..8,
        keys in vec(any::<u64>(), 1..200),
    ) {
        let reference = HashRing::with_default_replicas(shards);
        let mut ring = reference.clone();
        ring.add_shard(shards);
        ring.remove_shard(shards);
        for &key in &keys {
            prop_assert_eq!(ring.shard_for(key), reference.shard_for(key));
        }
    }
}
