//! Peer snapshot streaming: a session living on one store-backed server
//! is rehydrated on a *second* server — separate process-style store
//! directory, no shared disk — purely through the wire protocol
//! (`persist` → chunked `fetch_chunk` download → `restore`), and the
//! replica's answers and qualities match the source at 1e-12.

use pdb_engine::delta::XTupleMutation;
use pdb_engine::queries::TopKQuery;
use pdb_server::protocol::EvalMode;
use pdb_server::{Client, DatasetSpec, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::Path;
use std::thread;

const TOL: f64 = 1e-12;

fn boot(store_dir: &Path) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        shards: 2,
        store_dir: Some(store_dir.display().to_string()),
        compact_every: 0,
        ..Default::default()
    })
    .expect("bind store-backed server");
    let addr = server.local_addr().expect("bound address");
    (addr, thread::spawn(move || server.run()))
}

#[test]
fn streamed_replica_matches_the_source_session() {
    let base = std::env::temp_dir()
        .join("pdb-fleet-streaming-test")
        .join(format!("run-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let (src_dir, dst_dir, scratch) = (base.join("src"), base.join("dst"), base.join("scratch"));
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::create_dir_all(&dst_dir).unwrap();

    let (src_addr, src_handle) = boot(&src_dir);
    let (dst_addr, dst_handle) = boot(&dst_dir);
    let mut src = Client::connect(src_addr).unwrap();
    let mut dst = Client::connect(dst_addr).unwrap();

    // A session with history: queries registered and probes applied, so
    // the streamed snapshot carries a mutated database, not a fresh one.
    let spec = DatasetSpec::Synthetic { tuples: 200 };
    let query = TopKQuery::PTk { k: 5, threshold: 0.2 };
    // A live mirror tracks the collapses so each probe's keep position is
    // read from the *current* database (collapses compact rows out, so
    // positions shift as the session mutates).
    let mut mirror = pdb_quality::BatchQuality::from_owned(
        pdb_gen::build_dataset(&spec).unwrap(),
        vec![pdb_quality::WeightedQuery::new(query)],
    )
    .unwrap();
    let session = src.create_session(spec, 1, 0.8).unwrap().session;
    src.register_query(session, query, 1.0).unwrap();
    for x_tuple in [0usize, 3, 7] {
        let keep_pos = mirror.database().x_tuple(x_tuple).members[0];
        let mutation = XTupleMutation::CollapseToAlternative { keep_pos };
        src.apply_probe(session, x_tuple, mutation.clone(), EvalMode::Delta).unwrap();
        mirror.apply_collapse_in_place(x_tuple, &mutation).unwrap();
    }
    let source_report = src.quality(session).unwrap();
    let source_answers = src.evaluate(session).unwrap().answers;

    // Stream it across.  The destination knows nothing about the source:
    // different store, different WAL, same session id.
    let created = pdb_fleet::stream_session(&mut src, &mut dst, session, &scratch, 1, 0.8).unwrap();
    assert_eq!(created.session, session, "the replica keeps the source's session id");
    assert!(created.tuples > 0, "the streamed snapshot carries the database");

    // The replica must reproduce the source bit-for-bit (same snapshot
    // bytes → same database → same PSR run) once the same query set is
    // registered.
    dst.register_query(session, query, 1.0).unwrap();
    let replica_report = dst.quality(session).unwrap();
    assert!((replica_report.aggregate - source_report.aggregate).abs() <= TOL);
    assert_eq!(replica_report.qualities.len(), source_report.qualities.len());
    for (a, b) in replica_report.qualities.iter().zip(&source_report.qualities) {
        assert!((a - b).abs() <= TOL);
    }
    assert_eq!(dst.evaluate(session).unwrap().answers, source_answers);

    // The streamed session is durable on the destination: its restore
    // was journalled, so it survives losing the scratch file.
    std::fs::remove_dir_all(&scratch).unwrap();
    let stats = dst.stats().unwrap();
    assert!(stats.durable);
    assert_eq!(stats.sessions_live, 1);

    // A second stream of the same id must fail cleanly (the id exists).
    let dup = pdb_fleet::stream_session(&mut src, &mut dst, session, &scratch, 1, 0.8);
    assert!(dup.is_err(), "restoring over a live session id must be rejected");

    src.shutdown().unwrap();
    dst.shutdown().unwrap();
    src_handle.join().unwrap().unwrap();
    dst_handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&base).ok();
}
