//! Static plan vs adaptive re-planning (the paper's future-work question).
//!
//! The paper commits to a cleaning plan up front; when a probe succeeds
//! early or keeps failing, the leftover budget is not redirected.  This
//! example compares the realised quality improvement of the static greedy
//! plan against the adaptive policy that re-plans after every observed
//! probe outcome, on the same sensor database and budget.
//!
//! Run with `cargo run --release --example adaptive_cleaning`.

use rand::{rngs::StdRng, SeedableRng};
use uncertain_topk::clean::run_adaptive_session;
use uncertain_topk::gen::cleaning_params::{generate as gen_params, CleaningParamsConfig};
use uncertain_topk::gen::synthetic::{generate_ranked, SyntheticConfig};
use uncertain_topk::prelude::*;

fn main() {
    let db =
        generate_ranked(&SyntheticConfig { num_x_tuples: 300, ..SyntheticConfig::paper_default() })
            .expect("generation succeeds");
    let k = 10;
    let budget = 40;
    let ctx = CleaningContext::prepare(&db, k).expect("valid k");
    let params = gen_params(db.num_x_tuples(), &CleaningParamsConfig::default());
    let setup = CleaningSetup::new(params.costs, params.sc_probs).expect("valid setup");

    let static_plan = plan_greedy(&ctx, &setup, budget).expect("greedy plan");
    let static_expected = expected_improvement(&ctx, &setup, &static_plan);
    println!(
        "database: {} x-tuples, quality {:.3}; budget {budget} units",
        db.num_x_tuples(),
        ctx.quality
    );
    println!(
        "static greedy plan: {} probes, expected improvement {static_expected:.3}",
        static_plan.total_attempts()
    );

    let trials = 100;
    let mut static_total = 0.0;
    let mut adaptive_total = 0.0;
    let mut adaptive_probes = 0u64;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(trial);
        if let Some(cleaned) =
            simulate_cleaning(&db, &setup, &static_plan, &mut rng).expect("valid plan")
        {
            static_total += quality_tp(&cleaned, k).expect("quality computable") - ctx.quality;
        }
        let mut rng = StdRng::seed_from_u64(50_000 + trial);
        let outcome = run_adaptive_session(&db, &setup, k, budget, &mut rng).expect("session runs");
        adaptive_total += outcome.improvement();
        adaptive_probes += outcome.probes;
    }
    println!("\naveraged over {trials} simulated campaigns:");
    println!("  static  realised improvement : {:.3}", static_total / trials as f64);
    println!(
        "  adaptive realised improvement : {:.3}  ({:.1} probes per campaign)",
        adaptive_total / trials as f64,
        adaptive_probes as f64 / trials as f64
    );
    println!("\nThe adaptive policy redirects budget away from already-cleaned or");
    println!("hopeless entities, so its realised improvement is at least the static plan's.");
}
