//! Static plan vs adaptive re-planning (the paper's future-work question).
//!
//! The paper commits to a cleaning plan up front; when a probe succeeds
//! early or keeps failing, the leftover budget is not redirected.  This
//! example compares the realised quality improvement of the static greedy
//! plan against the adaptive policy that re-plans after every observed
//! probe outcome, on the same sensor database and budget — and shows the
//! incremental delta engine doing that re-planning with one PSR run per
//! *session* instead of one per *probe*.
//!
//! Run with `cargo run --release --example adaptive_cleaning`.

use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;
use uncertain_topk::clean::{run_adaptive_session_with, ReplanMode};
use uncertain_topk::gen::cleaning_params::{generate as gen_params, CleaningParamsConfig};
use uncertain_topk::gen::synthetic::{generate_ranked, SyntheticConfig};
use uncertain_topk::prelude::*;

fn main() {
    let db =
        generate_ranked(&SyntheticConfig { num_x_tuples: 300, ..SyntheticConfig::paper_default() })
            .expect("generation succeeds");
    let k = 10;
    let budget = 40;
    let ctx = CleaningContext::prepare(&db, k).expect("valid k");
    let params = gen_params(db.num_x_tuples(), &CleaningParamsConfig::default());
    let setup = CleaningSetup::new(params.costs, params.sc_probs).expect("valid setup");

    let static_plan = plan_greedy(&ctx, &setup, budget).expect("greedy plan");
    let static_expected = expected_improvement(&ctx, &setup, &static_plan);
    println!(
        "database: {} x-tuples, quality {:.3}; budget {budget} units",
        db.num_x_tuples(),
        ctx.quality
    );
    println!(
        "static greedy plan: {} probes, expected improvement {static_expected:.3}",
        static_plan.total_attempts()
    );

    let trials = 100;
    let mut static_total = 0.0;
    let mut adaptive_total = 0.0;
    let mut adaptive_probes = 0u64;
    let mut swapped = 0usize;
    let mut rebuilt = 0usize;
    let mut mode_times = [0.0f64; 2];
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(trial);
        if let Some(cleaned) =
            simulate_cleaning(&db, &setup, &static_plan, &mut rng).expect("valid plan")
        {
            static_total += quality_tp(&cleaned, k).expect("quality computable") - ctx.quality;
        }
        // The same probe stream drives both re-planning modes, so their
        // sessions take identical probes; only the wall-clock differs.
        for (slot, mode) in [ReplanMode::Incremental, ReplanMode::FullRebuild].iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(50_000 + trial);
            let start = Instant::now();
            let outcome = run_adaptive_session_with(&db, &setup, k, budget, *mode, &mut rng)
                .expect("session runs");
            mode_times[slot] += start.elapsed().as_secs_f64() * 1e3;
            if *mode == ReplanMode::Incremental {
                adaptive_total += outcome.improvement();
                adaptive_probes += outcome.probes;
                swapped += outcome.delta_stats.rows_swapped;
                rebuilt += outcome.delta_stats.rows_rebuilt;
            }
        }
    }
    let t = trials as f64;
    println!("\naveraged over {trials} simulated campaigns:");
    println!("  static  realised improvement : {:.3}", static_total / t);
    println!(
        "  adaptive realised improvement : {:.3}  ({:.1} probes per campaign)",
        adaptive_total / t,
        adaptive_probes as f64 / t
    );
    println!("\nre-planning cost per campaign (same probes, same outcomes):");
    println!("  incremental deltas  : {:.2} ms  (one PSR run per session)", mode_times[0] / t);
    println!("  full rebuilds       : {:.2} ms  (one PSR run per probe)", mode_times[1] / t);
    println!(
        "  delta rows per campaign: {:.1} factor-swapped, {:.1} rebuilt",
        swapped as f64 / t,
        rebuilt as f64 / t
    );
    println!("\nThe adaptive policy redirects budget away from already-cleaned or");
    println!("hopeless entities, so its realised improvement is at least the static plan's.");
}
