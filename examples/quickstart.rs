//! Quickstart: the paper's running example end to end.
//!
//! Builds the sensor database of Table I (`udb1`), answers a PT-2 query,
//! computes its PWS-quality, and then asks the greedy cleaner how to spend
//! a budget of 3 probes to make the answer less ambiguous — reproducing the
//! udb1 → udb2 story of the paper's introduction.
//!
//! Run with `cargo run --example quickstart`.

use uncertain_topk::core::examples;
use uncertain_topk::prelude::*;

fn main() {
    // Table I: four temperature sensors, seven alternative readings.
    let db = examples::udb1().rank_by(&ScoreRanking);
    println!("udb1: {} sensors, {} alternative readings", db.num_x_tuples(), db.len());

    // One PSR run answers the query *and* scores its quality (Section IV-C).
    let shared = SharedEvaluation::new(&db, 2).expect("k = 2 is valid");
    let answer = shared.pt_k(0.4).expect("threshold 0.4 is valid");
    println!("\nPT-2 answer (threshold 0.4):");
    for tuple in &answer.tuples {
        let t = db.tuple(tuple.position);
        println!("  {} = {:.0} deg C   Pr[top-2] = {:.3}", t.id, t.score, tuple.prob);
    }
    let quality = shared.quality();
    println!("\nPWS-quality of the answer: {quality:.2}  (paper: -2.55)");

    // Cleaning: each sensor can be probed for 1 unit and answers with
    // probability 0.8; we may spend at most 3 units.
    let ctx = CleaningContext::from_shared(&shared);
    let setup = CleaningSetup::uniform(db.num_x_tuples(), 1, 0.8).expect("valid setup");
    let plan = plan_greedy(&ctx, &setup, 3).expect("planning succeeds");
    println!("\nGreedy cleaning plan under a budget of 3 probes:");
    for l in plan.selected() {
        println!("  probe {} ({} attempts)", db.x_tuple(l).key, plan.count(l));
    }
    let gain = expected_improvement(&ctx, &setup, &plan);
    println!("expected quality after cleaning: {:.2} (improvement {gain:.2})", quality + gain);

    // Simulate actually executing the plan once.
    let mut rng = rand::thread_rng();
    if let Some(cleaned) = simulate_cleaning(&db, &setup, &plan, &mut rng).expect("valid plan") {
        let after = quality_tp(&cleaned, 2).expect("quality computable");
        println!("one simulated cleaning run produced quality {after:.2}");
    }
}
