//! Movie-rating integration scenario (the paper's MOV dataset).
//!
//! A rating system integrated from several sources stores, for every
//! (movie, viewer) pair, a handful of alternative ratings with confidence
//! values.  A Global-topk query asks for the k most recent, highest-rated
//! entries; cleaning means phoning the viewer to confirm which rating is
//! real.  This example compares all three query semantics on the MOV
//! stand-in and plans a calling campaign under a budget.
//!
//! Run with `cargo run --release --example movie_ratings`.

use rand::{rngs::StdRng, SeedableRng};
use uncertain_topk::gen::mov::{generate_ranked, MovConfig};
use uncertain_topk::prelude::*;

fn main() {
    let db = generate_ranked(&MovConfig { num_x_tuples: 2_000, ..MovConfig::paper_default() })
        .expect("generation succeeds");
    println!(
        "movie-rating database: {} (movie, viewer) pairs, {} alternative ratings",
        db.num_x_tuples(),
        db.len()
    );

    let k = 10;
    let shared = SharedEvaluation::new(&db, k).expect("valid k");

    // The three semantics studied in the paper, answered from one PSR run.
    let global = shared.global_topk();
    println!("\nGlobal-top{k} (most certainly recent & well-rated):");
    for entry in global.tuples.iter().take(5) {
        let t = db.tuple(entry.position);
        println!("  {}  score {:.3}  Pr[top-{k}] = {:.3}", t.id, t.score, entry.prob);
    }
    let ptk = shared.pt_k(0.3).expect("valid threshold");
    println!("PT-{k} with threshold 0.3 returns {} ratings", ptk.len());
    let ukranks = shared.u_k_ranks();
    println!("U-kRanks winners (rank 1..3):");
    for (h, winner) in ukranks.winners.iter().take(3).enumerate() {
        match winner {
            Some(w) => println!("  rank {}: {} with probability {:.3}", h + 1, w.id, w.prob),
            None => println!("  rank {}: unreachable", h + 1),
        }
    }

    let quality = shared.quality();
    println!("\nPWS-quality of the top-{k} answer: {quality:.3}");

    // Calling campaign: each viewer call costs 1-10 units and reaches the
    // viewer with the generated sc-probability; budget 50 units.
    let params = uncertain_topk::gen::cleaning_params::generate(
        db.num_x_tuples(),
        &uncertain_topk::gen::cleaning_params::CleaningParamsConfig::default(),
    );
    let setup = CleaningSetup::new(params.costs, params.sc_probs).expect("valid setup");
    let ctx = CleaningContext::from_shared(&shared);
    let budget = 50;
    let mut rng = StdRng::seed_from_u64(7);

    println!("\ncalling campaign under a budget of {budget} units:");
    for algo in CleaningAlgorithm::ALL {
        let plan = algo.plan(&ctx, &setup, budget, &mut rng).expect("planning succeeds");
        let gain = expected_improvement(&ctx, &setup, &plan);
        println!(
            "  {:6} -> call {:2} viewers ({:2} attempts), expected improvement {gain:.3}",
            algo.name(),
            plan.selected().len(),
            plan.total_attempts()
        );
    }
}
