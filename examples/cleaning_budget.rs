//! How much quality does a cleaning budget buy?
//!
//! A miniature version of Figure 6(a): for increasing budgets, compare the
//! expected quality improvement achieved by the optimal DP plan, the greedy
//! heuristic, and the two random baselines.
//!
//! Run with `cargo run --release --example cleaning_budget`.

use rand::{rngs::StdRng, SeedableRng};
use uncertain_topk::gen::cleaning_params::{generate as gen_params, CleaningParamsConfig};
use uncertain_topk::gen::synthetic::{generate_ranked, SyntheticConfig};
use uncertain_topk::prelude::*;

fn main() {
    let db = generate_ranked(&SyntheticConfig {
        num_x_tuples: 1_000,
        ..SyntheticConfig::paper_default()
    })
    .expect("generation succeeds");
    let k = 15;
    let ctx = CleaningContext::prepare(&db, k).expect("valid k");
    let params = gen_params(db.num_x_tuples(), &CleaningParamsConfig::default());
    let setup = CleaningSetup::new(params.costs, params.sc_probs).expect("valid setup");

    println!(
        "dataset: {} x-tuples, quality S = {:.3}, {} cleaning candidates",
        db.num_x_tuples(),
        ctx.quality,
        ctx.candidates().len()
    );
    println!("\n{:>8}  {:>10}  {:>10}  {:>10}  {:>10}", "budget", "DP", "Greedy", "RandP", "RandU");

    for &budget in &[1u64, 5, 10, 50, 100, 500, 1_000] {
        let mut row = format!("{budget:>8}");
        for algo in CleaningAlgorithm::ALL {
            let mut rng = StdRng::seed_from_u64(budget);
            let plan = algo.plan(&ctx, &setup, budget, &mut rng).expect("planning succeeds");
            let gain = expected_improvement(&ctx, &setup, &plan);
            row.push_str(&format!("  {gain:>10.4}"));
        }
        println!("{row}");
    }
    println!(
        "\nThe improvement is capped by |S| = {:.3}; DP is optimal, Greedy tracks it",
        -ctx.quality
    );
    println!("closely, and the random baselines waste budget on low-impact x-tuples.");
}
