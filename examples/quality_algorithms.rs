//! PW vs PWR vs TP: the three quality-computation algorithms side by side.
//!
//! Reproduces in miniature the comparison of Figure 4(d): all three
//! algorithms agree on the quality score, but their costs differ by orders
//! of magnitude as the database grows.
//!
//! Run with `cargo run --release --example quality_algorithms`.

use std::time::Instant;
use uncertain_topk::gen::synthetic::{generate_ranked, SyntheticConfig};
use uncertain_topk::prelude::*;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let k = 5;
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  (k = {k})",
        "tuples", "PW (ms)", "PWR (ms)", "TP (ms)"
    );
    for &tuples in &[10usize, 30, 50, 200, 1_000, 5_000] {
        let db = generate_ranked(&SyntheticConfig::with_total_tuples(tuples)).expect("generation");

        // PW enumerates every possible world: only feasible while the world
        // count is small.
        let pw = if db.world_count() <= (1 << 22) {
            let (q, ms) = time(|| quality_pw(&db, k).expect("PW succeeds"));
            Some((q, ms))
        } else {
            None
        };
        let (q_pwr, ms_pwr) = time(|| quality_pwr(&db, k).expect("PWR succeeds"));
        let (q_tp, ms_tp) = time(|| quality_tp(&db, k).expect("TP succeeds"));

        // The algorithms must agree wherever they all run.
        if let Some((q_pw, _)) = pw {
            assert!((q_pw - q_tp).abs() < 1e-6, "PW {q_pw} vs TP {q_tp}");
        }
        assert!((q_pwr - q_tp).abs() < 1e-6, "PWR {q_pwr} vs TP {q_tp}");

        println!(
            "{tuples:>8}  {:>12}  {ms_pwr:>12.3}  {ms_tp:>12.3}   quality = {q_tp:.3}",
            pw.map(|(_, ms)| format!("{ms:.3}")).unwrap_or_else(|| "skipped".into()),
        );
    }
    println!("\nPW is skipped once the possible-world count becomes astronomical;");
    println!("TP keeps the cost linear in the database size (Theorem 1 of the paper).");
}
