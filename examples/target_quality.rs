//! Minimum cleaning cost for a target quality.
//!
//! The inverse of the paper's budgeted problem (listed as future work in
//! its conclusion): instead of "how much quality does a budget of C buy?",
//! ask "how cheaply can the expected quality be raised to a target?".
//! Compares the greedy and the optimal (DP-based) min-cost planners across
//! a range of targets.
//!
//! Run with `cargo run --release --example target_quality`.

use uncertain_topk::clean::{min_cost_greedy, min_cost_optimal};
use uncertain_topk::gen::cleaning_params::{generate as gen_params, CleaningParamsConfig};
use uncertain_topk::gen::synthetic::{generate_ranked, SyntheticConfig};
use uncertain_topk::prelude::*;

fn main() {
    let db =
        generate_ranked(&SyntheticConfig { num_x_tuples: 500, ..SyntheticConfig::paper_default() })
            .expect("generation succeeds");
    let k = 15;
    let ctx = CleaningContext::prepare(&db, k).expect("valid k");
    let params = gen_params(db.num_x_tuples(), &CleaningParamsConfig::default());
    let setup = CleaningSetup::new(params.costs, params.sc_probs).expect("valid setup");

    let total = -ctx.quality;
    println!(
        "database: {} x-tuples; quality S = {:.3}; removable ambiguity |S| = {total:.3}",
        db.num_x_tuples(),
        ctx.quality
    );
    println!(
        "\n{:>18}  {:>14}  {:>14}  {:>16}",
        "target (% of |S|)", "greedy cost", "optimal cost", "optimal probes"
    );
    for pct in [10, 25, 50, 75, 90, 99] {
        let target = total * pct as f64 / 100.0;
        let greedy = min_cost_greedy(&ctx, &setup, target)
            .expect("solver runs")
            .expect("target below the achievable cap");
        let optimal = min_cost_optimal(&ctx, &setup, target, 1_000_000)
            .expect("solver runs")
            .expect("target below the achievable cap");
        println!(
            "{pct:>17}%  {:>14}  {:>14}  {:>16}",
            greedy.cost,
            optimal.cost,
            optimal.plan.total_attempts()
        );
    }
    println!("\nThe cost curve is sharply convex: the last few percent of ambiguity");
    println!("require repeated probes on entities whose cleaning rarely succeeds.");
}
