//! Sensor-network monitoring scenario.
//!
//! The paper's motivating application: a base station maintains the latest
//! (stale, noisy) reading of thousands of sensors and wants to report the
//! top-k hottest regions.  This example
//!
//! 1. generates a synthetic sensor database (Gaussian uncertainty, as in
//!    the paper's evaluation),
//! 2. answers a PT-k query and measures how trustworthy the answer is,
//! 3. spends a limited probing budget (greedy vs uniform-random) and
//!    compares the expected quality improvement, and
//! 4. verifies the expected improvement by Monte-Carlo simulation of the
//!    actual probing.
//!
//! Run with `cargo run --release --example sensor_network`.

use rand::{rngs::StdRng, SeedableRng};
use uncertain_topk::gen::synthetic::{generate_ranked, SyntheticConfig, UncertaintyPdf};
use uncertain_topk::prelude::*;

fn main() {
    // 1. A 1 000-sensor deployment; each sensor's reading is a Gaussian
    //    histogram over its uncertainty interval.
    let config = SyntheticConfig {
        num_x_tuples: 1_000,
        pdf: UncertaintyPdf::Gaussian { sigma: 100.0 },
        ..SyntheticConfig::paper_default()
    };
    let db = generate_ranked(&config).expect("generation succeeds");
    println!("sensor database: {} sensors, {} readings", db.num_x_tuples(), db.len());

    // 2. Which sensors are plausibly among the 15 hottest?
    let k = 15;
    let shared = SharedEvaluation::new(&db, k).expect("valid k");
    let answer = shared.pt_k(0.1).expect("valid threshold");
    let quality = shared.quality();
    println!("PT-{k} answer holds {} sensors; PWS-quality = {quality:.2}", answer.len());

    // 3. Probing plan: costs 1-10 units per probe, success probability
    //    drawn uniformly, budget 100 units.
    let params = uncertain_topk::gen::cleaning_params::generate(
        db.num_x_tuples(),
        &uncertain_topk::gen::cleaning_params::CleaningParamsConfig::default(),
    );
    let setup = CleaningSetup::new(params.costs, params.sc_probs).expect("valid setup");
    let ctx = CleaningContext::from_shared(&shared);
    let budget = 100;

    let greedy = plan_greedy(&ctx, &setup, budget).expect("greedy plan");
    let mut rng = StdRng::seed_from_u64(42);
    let random = plan_rand_u(&ctx, &setup, budget, &mut rng).expect("random plan");

    let greedy_gain = expected_improvement(&ctx, &setup, &greedy);
    let random_gain = expected_improvement(&ctx, &setup, &random);
    println!("\nbudget = {budget} units");
    println!(
        "  greedy probing : {} sensors, expected improvement {greedy_gain:.3}",
        greedy.selected().len()
    );
    println!(
        "  random probing : {} sensors, expected improvement {random_gain:.3}",
        random.selected().len()
    );

    // 4. Does the closed-form expectation match reality?  Execute the
    //    greedy plan 200 times and average the observed improvement.
    let trials = 200;
    let mut total = 0.0;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(1_000 + trial);
        let cleaned = simulate_cleaning(&db, &setup, &greedy, &mut rng)
            .expect("valid plan")
            .expect("sensors never vanish entirely");
        total += quality_tp(&cleaned, k).expect("quality computable") - quality;
    }
    println!(
        "  Monte-Carlo check: mean observed improvement over {trials} runs = {:.3}",
        total / trials as f64
    );
}
