//! Vendored stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of rand 0.8's API used by this workspace:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and [`thread_rng`].
//! The generator core is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64; it is fast and statistically solid, but its streams differ
//! from the real crate's ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution of this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range of.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Like the real crate, this is a single blanket impl per range shape so
/// type inference can flow from the range's element type to the result.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T` (`f64` in
    /// `[0, 1)`, uniform bits for integers, a fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The statistically strong generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but keep the guard for clarity.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A lazily seeded generator for callers that do not need
    /// reproducibility.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A non-deterministically seeded generator (seeded from the system clock
/// and a per-call counter; the real crate uses OS entropy).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(nanos ^ unique.rotate_left(32)))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits));
    }
}
