//! Vendored stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_assume!`], range and tuple strategies,
//! [`collection::vec`], [`Strategy::prop_map`], [`any`] and
//! [`sample::Index`]. Failing inputs are **not shrunk**; the failure
//! message reports the deterministic case seed instead, which reproduces
//! the input when the test is re-run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    /// The whole crate under the conventional `prop` alias
    /// (`prop::sample::Index`, `prop::collection::vec`, ...).
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestCaseError, TestRng};
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case does not count, try another.
    Reject,
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
}

/// The deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test generator: seeded from the test's name so
    /// every run regenerates the same case sequence.
    pub fn for_test(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(hash))
    }

    /// Generator for one explicit case seed (printed on failure).
    pub fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    ///
    /// Unlike the real proptest there is no shrinking: a strategy is just a
    /// deterministic function of the [`TestRng`] stream.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chain a dependent strategy generated from this one's values.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discard generated values that fail `f` (up to a retry cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.inner.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter {:?} rejected 10000 consecutive candidates", self.whence);
        }
    }
}

pub use strategy::Strategy;

// ---------------------------------------------------------------------------
// Primitive strategies: ranges and tuples
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.uniform_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.uniform_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.uniform_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Strategy generating any value of `A` (`any::<u64>()`, ...).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Size specification for collection strategies: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { lo: exact, hi: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self { lo: range.start, hi: range.end }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)`: a vector of `size` elements (fixed length or
    /// `lo..hi` range) generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    //! Sampling helpers (`Index`).

    use super::{Arbitrary, TestRng};

    /// An index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Project onto a collection of length `len` (panics if empty).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each function body runs against `config.cases`
/// generated inputs; bindings take the form `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = concat!(module_path!(), "::", stringify!($name));
                let mut seed_rng = $crate::TestRng::for_test(base);
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    let case_seed = seed_rng.next_u64();
                    let mut case_rng = $crate::TestRng::from_seed(case_seed);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut case_rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(20).max(1000) {
                                panic!(
                                    "property {}: too many prop_assume! rejections ({} after {} passes)",
                                    stringify!($name), rejected, passed
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "property {} failed at case #{} (case seed {:#x}): {}",
                                stringify!($name), passed, case_seed, message
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            left, right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                            ::std::format!($($fmt)*), left, right
                        ),
                    ));
                }
            }
        }
    };
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, u64)> {
        (0.0f64..10.0, 1u64..100).prop_map(|(f, u)| (f * 2.0, u + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5, z in 1u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((1..=9).contains(&z));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(v in vec(pair(), 1..8), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (f, u) in &v {
                prop_assert!((0.0..20.0).contains(f), "f = {}", f);
                prop_assert!((2..=100).contains(u));
            }
            let _ = flag;
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn sample_index_projects(idx in any::<prop::sample::Index>()) {
            let i = idx.index(7);
            prop_assert!(i < 7);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_seed() {
        proptest! {
            // Inner #[test] attributes are not collected by the harness;
            // the generated function is invoked by hand below.
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = vec((0.0f64..1.0, 0u64..50), 1..20);
        let a: Vec<_> = {
            let mut rng = TestRng::for_test("determinism");
            (0..10).map(|_| Strategy::generate(&strat, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::for_test("determinism");
            (0..10).map(|_| Strategy::generate(&strat, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
