//! Vendored stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Provides the slice parallel-iterator subset this workspace uses —
//! `par_iter().map(..).collect()` and `for_each` — executed on scoped
//! `std::thread`s with contiguous chunking. The mapping function is applied
//! to each item exactly once and results are reassembled in input order, so
//! output is deterministic and identical to the sequential equivalent
//! regardless of thread count.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// `rayon::prelude` work-alike: import the traits that add `par_iter`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

/// Number of worker threads to use for `items` work units.
fn workers_for(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    cores.min(items).max(1)
}

/// Adds [`ParallelSlice::par_iter`] to slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over references to the slice's items.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// By-reference conversion trait matching rayon's name, so call sites read
/// identically to the real crate.
pub trait IntoParallelRefIterator<'a> {
    /// The item type produced by the parallel iterator.
    type Item: 'a;
    /// Convert into a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every item, keeping input order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Run `f` on every item across the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        ParMap { items: self.items, f: |t: &'a T| f(t) }.run();
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        let n = self.items.len();
        let workers = workers_for(n);
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk_size = n.div_ceil(workers);
        let f = &self.f;
        let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                out.push(handle.join().expect("rayon-shim worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Collect the mapped results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let input: Vec<u64> = (1..=100).collect();
        input.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }
}
