//! Vendored stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Prints and parses the vendored `serde::Value` tree as standard JSON.
//! Floats are printed with Rust's shortest round-trip formatting, so
//! `to_string` → `from_str` preserves every finite `f64` bit-for-bit.

#![forbid(unsafe_code)]

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {} in JSON input",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize a non-finite float as JSON"));
            }
            // Rust's Display for f64 is the shortest decimal that parses
            // back to the same bits, and never uses exponent notation.
            let text = f.to_string();
            out.push_str(&text);
            // Keep floats recognizable as floats so integral values like
            // 2.0 round-trip into Value::F64 rather than Value::U64; both
            // deserialize identically, but this preserves the tree shape.
            if !text.contains('.') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of JSON input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected character {:?} at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::custom("unterminated JSON string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc =
                        self.peek().ok_or_else(|| Error::custom("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must follow.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at offset {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_json() {
        let value = Value::Map(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::Seq(vec![Value::F64(1.5), Value::F64(-0.25)])),
            ("c".into(), Value::Str("hi \"there\"\n".into())),
            ("d".into(), Value::Null),
            ("e".into(), Value::Bool(true)),
            ("f".into(), Value::I64(-3)),
        ]);
        let json = {
            let mut s = String::new();
            write_value(&value, &mut s).unwrap();
            s
        };
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for f in [0.1, 1e-12, 123456.789, -2.55, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} badly round-tripped via {json}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A😀".into()));
    }
}
