//! Vendored stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! item shapes this workspace uses: structs (named, tuple, unit — including
//! simple type generics like `Database<V>`) and enums whose variants are
//! unit, tuple or struct-like. `#[serde(...)]` attributes are not
//! supported; the generated impls target the simplified value-tree traits
//! of the vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed generic type parameter: its name plus any declared bounds
/// (e.g. `("V", "V: Clone")`; bounds text excludes defaults).
struct GenericParam {
    name: String,
    decl: String,
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Skip any number of (inner or outer) attributes.
    fn skip_attrs(&mut self) {
        loop {
            if !self.peek_punct('#') {
                return;
            }
            self.pos += 1; // '#'
            self.eat_punct('!');
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            }
        }
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip tokens until a `,` at angle-bracket depth 0, or the end.
    /// Returns the skipped tokens.
    fn take_until_top_level_comma(&mut self) -> Vec<TokenTree> {
        let mut depth = 0i32;
        let mut taken = Vec::new();
        let mut prev_joint_minus = false;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let ch = p.as_char();
                    if ch == ',' && depth == 0 {
                        break;
                    }
                    if ch == '<' {
                        depth += 1;
                    } else if ch == '>' && !prev_joint_minus {
                        depth -= 1;
                    }
                    prev_joint_minus = ch == '-' && p.spacing() == proc_macro::Spacing::Joint;
                }
                _ => prev_joint_minus = false,
            }
            taken.push(self.next().expect("peeked token exists"));
        }
        taken
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();

    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("serde_derive: expected `struct` or `enum`, found {:?}", c.peek());
    };
    let name = c.expect_ident();
    let generics = parse_generics(&mut c);

    let body = if is_enum {
        let group = expect_group(&mut c, Delimiter::Brace);
        Body::Enum(parse_variants(group))
    } else {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let group = expect_group(&mut c, Delimiter::Brace);
                Body::Struct(Fields::Named(parse_named_fields(group)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let group = expect_group(&mut c, Delimiter::Parenthesis);
                Body::Struct(Fields::Tuple(count_tuple_fields(group)))
            }
            _ => Body::Struct(Fields::Unit),
        }
    };

    Item { name, generics, body }
}

fn expect_group(c: &mut Cursor, delim: Delimiter) -> TokenStream {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => g.stream(),
        other => panic!("serde_derive: expected {delim:?} group, found {other:?}"),
    }
}

/// Parse `<...>` after the item name (if present) into its type parameters.
/// Lifetimes are rejected (unused in this workspace); defaults are dropped.
fn parse_generics(c: &mut Cursor) -> Vec<GenericParam> {
    if !c.eat_punct('<') {
        return Vec::new();
    }
    let mut params = Vec::new();
    let mut depth = 1i32;
    let mut segment: Vec<TokenTree> = Vec::new();
    loop {
        let tok = c.next().unwrap_or_else(|| panic!("serde_derive: unterminated generics"));
        if let TokenTree::Punct(p) = &tok {
            let ch = p.as_char();
            if ch == '<' {
                depth += 1;
            } else if ch == '>' {
                depth -= 1;
                if depth == 0 {
                    if !segment.is_empty() {
                        params.push(parse_generic_segment(&segment));
                    }
                    return params;
                }
            } else if ch == ',' && depth == 1 {
                if !segment.is_empty() {
                    params.push(parse_generic_segment(&segment));
                }
                segment.clear();
                continue;
            }
        }
        segment.push(tok);
    }
}

fn parse_generic_segment(segment: &[TokenTree]) -> GenericParam {
    match segment.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "const" => {
            panic!("serde_derive: const generics are not supported")
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            panic!("serde_derive: lifetime generics are not supported")
        }
        Some(TokenTree::Ident(i)) => {
            let name = i.to_string();
            // Keep the declaration up to a default (`= ...`), dropping the
            // default itself.
            let mut decl_tokens: Vec<String> = Vec::new();
            for tok in segment {
                if let TokenTree::Punct(p) = tok {
                    if p.as_char() == '=' {
                        break;
                    }
                }
                decl_tokens.push(tok.to_string());
            }
            GenericParam { name, decl: decl_tokens.join(" ") }
        }
        other => panic!("serde_derive: unsupported generic parameter {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            return fields;
        }
        let name = c.expect_ident();
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        c.take_until_top_level_comma();
        c.eat_punct(',');
        fields.push(name);
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            return count;
        }
        let ty = c.take_until_top_level_comma();
        if !ty.is_empty() {
            count += 1;
        }
        if !c.eat_punct(',') {
            return count;
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            return variants;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let group = expect_group(&mut c, Delimiter::Brace);
                Fields::Named(parse_named_fields(group))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let group = expect_group(&mut c, Delimiter::Parenthesis);
                Fields::Tuple(count_tuple_fields(group))
            }
            _ => Fields::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip its expression.
            c.take_until_top_level_comma();
        }
        c.eat_punct(',');
        variants.push(Variant { name, fields });
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<V: ... + Bound> Bound for Name<V>` header pieces.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), item.name.clone());
    }
    let decls: Vec<String> = item
        .generics
        .iter()
        .map(|g| {
            if g.decl.contains(':') {
                format!("{} + {bound}", g.decl)
            } else {
                format!("{}: {bound}", g.decl)
            }
        })
        .collect();
    let names: Vec<String> = item.generics.iter().map(|g| g.name.clone()).collect();
    (format!("<{}>", decls.join(", ")), format!("{}<{}>", item.name, names.join(", ")))
}

fn render_serialize(item: &Item) -> String {
    let (impl_generics, self_ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.body {
        Body::Struct(fields) => serialize_fields_expr(fields, &FieldAccess::SelfDot),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "Self::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Fields::Named(names) => {
                        let bindings = names.join(", ");
                        let inner = serialize_fields_expr(&v.fields, &FieldAccess::Bound);
                        arms.push_str(&format!(
                            "Self::{vname} {{ {bindings} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = serialize_fields_expr(&v.fields, &FieldAccess::Bound);
                        arms.push_str(&format!(
                            "Self::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {self_ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// How generated serialization code reaches the fields: `self.x` for
/// structs, bare bindings (from a match arm) for enum variants.
enum FieldAccess {
    SelfDot,
    Bound,
}

fn serialize_fields_expr(fields: &Fields, access: &FieldAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    let expr = match access {
                        FieldAccess::SelfDot => format!("&self.{f}"),
                        FieldAccess::Bound => f.clone(),
                    };
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({expr}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => {
            let expr = match access {
                FieldAccess::SelfDot => "&self.0".to_string(),
                FieldAccess::Bound => "__f0".to_string(),
            };
            format!("::serde::Serialize::to_value({expr})")
        }
        Fields::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| {
                    let expr = match access {
                        FieldAccess::SelfDot => format!("&self.{i}"),
                        FieldAccess::Bound => format!("__f{i}"),
                    };
                    format!("::serde::Serialize::to_value({expr})")
                })
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
    }
}

fn render_deserialize(item: &Item) -> String {
    let (impl_generics, self_ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => deserialize_fields_expr(fields, "Self", "value", name),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            let mut has_data = false;
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}),\n"
                    )),
                    _ => {
                        has_data = true;
                        let ctor = format!("Self::{vname}");
                        let expr = deserialize_fields_expr(
                            &v.fields,
                            &ctor,
                            "__inner",
                            &format!("{name}::{vname}"),
                        );
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __inner = &__entry.1; ::std::result::Result::Ok({expr}) }},\n"
                        ));
                    }
                }
            }
            let str_branch = format!(
                "if let ::std::option::Option::Some(__s) = value.as_str() {{\n\
                     return match __s {{\n{unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                     }};\n\
                 }}\n"
            );
            let map_branch = if has_data {
                format!(
                    "let __map = value.as_map().ok_or_else(|| ::serde::Error::custom(\"expected a variant map for {name}\"))?;\n\
                     if __map.len() != 1 {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\"expected a single-entry variant map for {name}\"));\n\
                     }}\n\
                     let __entry = &__map[0];\n\
                     let __parsed: ::std::result::Result<Self, ::serde::Error> = match __entry.0.as_str() {{\n{data_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                     }};\n\
                     __parsed?\n"
                )
            } else {
                format!(
                    "::std::result::Result::Err::<Self, ::serde::Error>(::serde::Error::custom(\"expected a string variant for {name}\"))?\n"
                )
            };
            format!("{{\n{str_branch}{map_branch}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {self_ty} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({body})\n\
             }}\n\
         }}"
    )
}

/// Expression (usable inside `Ok(...)`) that builds `ctor` from the value
/// expression `source`; `?` is available in the surrounding function.
fn deserialize_fields_expr(fields: &Fields, ctor: &str, source: &str, context: &str) -> String {
    match fields {
        Fields::Unit => ctor.to_string(),
        Fields::Named(names) => {
            let map_binding = format!(
                "{source}.as_map().ok_or_else(|| ::serde::Error::custom(\"expected a map for {context}\"))?"
            );
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::Value::map_get(__fields, \"{f}\")\
                             .ok_or_else(|| ::serde::Error::custom(\"missing field {f} of {context}\"))?)?"
                    )
                })
                .collect();
            format!("{{ let __fields = {map_binding}; {ctor} {{ {} }} }}", inits.join(", "))
        }
        Fields::Tuple(1) => format!("{ctor}(::serde::Deserialize::from_value({source})?)"),
        Fields::Tuple(n) => {
            let seq_binding = format!(
                "{source}.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected a sequence for {context}\"))?"
            );
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i})\
                             .ok_or_else(|| ::serde::Error::custom(\"missing element {i} of {context}\"))?)?"
                    )
                })
                .collect();
            format!("{{ let __items = {seq_binding}; {ctor}({}) }}", inits.join(", "))
        }
    }
}
