//! Vendored stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Instead of the real crate's visitor architecture, serialization goes
//! through an owned [`Value`] tree: [`Serialize`] renders into it,
//! [`Deserialize`] reads back out of it, and format crates (the vendored
//! `serde_json`) print/parse that tree. The derive macros re-exported from
//! `serde_derive` generate impls against these simplified traits, and call
//! sites (`#[derive(Serialize, Deserialize)]`, `serde_json::to_string`,
//! `serde_json::from_str`) look exactly like the real crate's.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (order preserved for round-trips).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The string content, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Look up `key` in map `entries` (helper for derived impls).
    pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::custom(format!(
                        "expected an unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::I64(i) => *i as i128,
                    Value::U64(u) => *u as i128,
                    other => return Err(Error::custom(format!(
                        "expected a signed integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

// 128-bit integers travel as strings so they survive JSON number parsing.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(small) => Value::U64(small),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::U64(u) => Ok(*u as u128),
            Value::I64(i) if *i >= 0 => Ok(*i as u128),
            Value::Str(s) => {
                s.parse().map_err(|_| Error::custom(format!("invalid u128 string {s:?}")))
            }
            other => Err(Error::custom(format!("expected a u128, found {other:?}"))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!(
                        "expected a number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected a bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected a string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!("expected a single-char string, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected a sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected a sequence for a tuple"))?;
                Ok(($(
                    $name::from_value(items.get($idx).ok_or_else(|| {
                        Error::custom(format!("missing tuple element {}", $idx))
                    })?)?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| Error::custom("expected a map"))?;
        entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| Error::custom("expected a map"))?;
        entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(u128::from_value(&(u128::MAX).to_value()).unwrap(), u128::MAX);
    }

    #[test]
    fn container_round_trips() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn type_mismatches_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Null).is_err());
    }
}
