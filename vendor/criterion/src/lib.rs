//! Vendored stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Runs benchmarks with a plain wall-clock measurement loop and prints a
//! `min / median / max` summary line per benchmark — no statistics
//! engine, no HTML reports. The API mirrors the real crate's
//! (`benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) so bench targets compile
//! unchanged against either implementation.  Like the real crate, the
//! `--warm-up-time <s>` / `--measurement-time <s>` / `--sample-size <n>`
//! CLI flags override the per-group settings — that is what CI's
//! `bench-smoke` quick mode uses.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver: owns CLI-style configuration (a name filter and the
/// quick-mode measurement overrides).
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
    warm_up_override: Option<Duration>,
    measurement_override: Option<Duration>,
    sample_size_override: Option<usize>,
}

/// Parse a `--warm-up-time` / `--measurement-time` style value: seconds as
/// a (possibly fractional) number.  Invalid or non-positive values are
/// ignored, matching a lenient CLI.
fn parse_seconds(value: Option<String>) -> Option<Duration> {
    let secs: f64 = value?.parse().ok()?;
    (secs > 0.0).then(|| Duration::from_secs_f64(secs))
}

impl Criterion {
    /// Read configuration from the process arguments. Recognizes a bare
    /// `<filter>` substring argument, applies the measurement-override
    /// flags (`--warm-up-time <s>`, `--measurement-time <s>`,
    /// `--sample-size <n>`) and ignores the other flags cargo-bench passes
    /// (`--bench`, `--profile-time <t>`, ...).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--verbose" | "--quiet" => {}
                "--warm-up-time" => self.warm_up_override = parse_seconds(args.next()),
                "--measurement-time" => self.measurement_override = parse_seconds(args.next()),
                "--sample-size" => {
                    self.sample_size_override =
                        args.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n > 0);
                }
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.run(&id, &mut f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target wall-clock time for the whole measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark `f` without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.0, &mut f);
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full_id =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{}", self.name, id) };
        if !self.criterion.matches(&full_id) {
            return;
        }
        // CLI overrides win over the group's in-code settings, like the
        // real crate.
        let warm_up_time = self.criterion.warm_up_override.unwrap_or(self.warm_up_time);
        let measurement_time = self.criterion.measurement_override.unwrap_or(self.measurement_time);
        let sample_size = self.criterion.sample_size_override.unwrap_or(self.sample_size);

        // Warm-up: run batches until the warm-up budget is spent, deriving
        // an iteration-time estimate as we go.
        let warm_up_start = Instant::now();
        let mut iters_done: u64 = 0;
        let mut batch: u64 = 1;
        while warm_up_start.elapsed() < warm_up_time {
            let mut bencher = Bencher { iters: batch, elapsed: Duration::ZERO };
            f(&mut bencher);
            iters_done += batch;
            batch = (batch * 2).min(1 << 20);
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

        // Measurement: `sample_size` samples splitting the measurement
        // budget, each a batch big enough to be timeable.
        let per_sample = measurement_time.as_secs_f64() / sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);
        let mut sample_means: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut bencher = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut bencher);
            sample_means.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let min = sample_means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample_means.iter().copied().fold(0.0f64, f64::max);
        let median = median_of(&mut sample_means);
        println!(
            "{full_id:<50} time: [{} {} {}]  ({} samples x {} iters)",
            format_time(min),
            format_time(median),
            format_time(max),
            sample_means.len(),
            iters_per_sample,
        );
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

/// Median of the samples (sorts in place; averages the two middle samples
/// for even counts).  The middle value of the printed `[min median max]`
/// triple — the number `bench_json` extracts.
fn median_of(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self(id.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self(id)
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, called in a batch sized by the calibration loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevent the compiler from optimizing a value away (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        let input = 1000u64;
        group.bench_with_input(BenchmarkId::new("sum", input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion { filter: Some("nomatch".into()), ..Criterion::default() };
        let mut group = c.benchmark_group("demo");
        group.sample_size(1);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::from_parameter(1), &1u32, |_b, _i| {
            panic!("filtered benchmark must not run")
        });
    }

    #[test]
    fn median_is_the_middle_sample() {
        assert_eq!(median_of(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median_of(&mut [5.0]), 5.0);
    }

    #[test]
    fn seconds_parsing_accepts_fractions_and_rejects_junk() {
        assert_eq!(parse_seconds(Some("0.5".into())), Some(Duration::from_millis(500)));
        assert_eq!(parse_seconds(Some("2".into())), Some(Duration::from_secs(2)));
        assert_eq!(parse_seconds(Some("0".into())), None);
        assert_eq!(parse_seconds(Some("abc".into())), None);
        assert_eq!(parse_seconds(None), None);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("PW", 500).0, "PW/500");
        assert_eq!(BenchmarkId::from_parameter(15).0, "15");
    }
}
