//! Cross-algorithm consistency checks on randomly generated databases.
//!
//! The efficient algorithms (incremental PSR, PWR, TP) must agree with the
//! brute-force possible-world oracles on every database small enough to
//! enumerate; these tests sweep a range of random shapes, including
//! sub-full probability mass (implicit null alternatives), near-certain
//! tuples and duplicate scores.

use rand::{rngs::StdRng, Rng, SeedableRng};
use uncertain_topk::engine::oracle::rank_probabilities_by_enumeration;
use uncertain_topk::prelude::*;

/// Build a random ranked database with `m` x-tuples.
fn random_db(rng: &mut StdRng, m: usize, allow_null_mass: bool) -> RankedDatabase {
    let mut x_tuples = Vec::new();
    for _ in 0..m {
        let alts = rng.gen_range(1..=4);
        let mut remaining: f64 = 1.0;
        let mut v = Vec::new();
        for a in 0..alts {
            let p = if a == alts - 1 && !allow_null_mass {
                remaining
            } else {
                remaining * rng.gen_range(0.1..0.9)
            };
            remaining -= p;
            // Scores are drawn from a small integer domain to exercise the
            // tie-breaking logic.
            v.push((rng.gen_range(0..40) as f64, p));
        }
        x_tuples.push(v);
    }
    RankedDatabase::from_scored_x_tuples(&x_tuples).unwrap()
}

#[test]
fn psr_matches_the_possible_world_oracle() {
    let mut rng = StdRng::seed_from_u64(2013);
    for trial in 0..30 {
        let allow_null = trial % 2 == 0;
        let m = rng.gen_range(2..8);
        let db = random_db(&mut rng, m, allow_null);
        let k = rng.gen_range(1..6);
        let fast = rank_probabilities(&db, k).unwrap();
        let slow = rank_probabilities_by_enumeration(&db, k).unwrap();
        for pos in 0..db.len() {
            for h in 1..=k {
                assert!(
                    (fast.rank_prob(pos, h) - slow.rank_prob(pos, h)).abs() < 1e-9,
                    "trial {trial}, tuple {pos}, rank {h}"
                );
            }
            assert!(
                (fast.top_k_prob(pos) - slow.top_k_prob(pos)).abs() < 1e-9,
                "trial {trial}, tuple {pos}"
            );
        }
    }
}

#[test]
fn the_three_quality_algorithms_agree() {
    let mut rng = StdRng::seed_from_u64(777);
    for trial in 0..30 {
        let allow_null = trial % 3 == 0;
        let m = rng.gen_range(2..7);
        let db = random_db(&mut rng, m, allow_null);
        let k = rng.gen_range(1..5);
        let pw = quality_pw(&db, k).unwrap();
        let pwr = quality_pwr(&db, k).unwrap();
        let tp = quality_tp(&db, k).unwrap();
        assert!((pw - pwr).abs() < 1e-8, "trial {trial}: PW {pw} vs PWR {pwr}");
        assert!((pw - tp).abs() < 1e-8, "trial {trial}: PW {pw} vs TP {tp}");
        assert!(pw <= 1e-12, "quality is never positive");
    }
}

#[test]
fn exact_and_incremental_psr_agree_on_larger_databases() {
    let mut rng = StdRng::seed_from_u64(31337);
    for _ in 0..3 {
        let db = random_db(&mut rng, 300, true);
        for &k in &[1usize, 10, 40] {
            let fast = rank_probabilities(&db, k).unwrap();
            let exact = rank_probabilities_exact(&db, k).unwrap();
            for pos in 0..db.len() {
                assert!((fast.top_k_prob(pos) - exact.top_k_prob(pos)).abs() < 1e-8);
            }
        }
    }
}

#[test]
fn query_semantics_agree_with_definitions() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10 {
        let db = random_db(&mut rng, 6, false);
        let k = 3;
        let rp = rank_probabilities(&db, k).unwrap();

        // PT-k: exactly the tuples whose top-k probability clears the bar.
        let threshold = 0.25;
        let answer = pt_k(&db, &rp, threshold).unwrap();
        for pos in 0..db.len() {
            assert_eq!(
                answer.contains_position(pos),
                rp.top_k_prob(pos) >= threshold,
                "PT-k membership must follow the threshold"
            );
        }

        // Global-topk: no excluded tuple may beat an included one.
        let global = global_topk(&db, &rp);
        let included = global.positions();
        let worst_included =
            included.iter().map(|&p| rp.top_k_prob(p)).fold(f64::INFINITY, f64::min);
        for pos in 0..db.len() {
            if !included.contains(&pos) {
                assert!(rp.top_k_prob(pos) <= worst_included + 1e-12);
            }
        }

        // U-kRanks winners carry the per-rank maximum probability.
        let uk = u_k_ranks(&db, &rp);
        for (h0, winner) in uk.winners.iter().enumerate() {
            let best = (0..db.len()).map(|p| rp.rank_prob(p, h0 + 1)).fold(0.0, f64::max);
            match winner {
                Some(w) => assert!((w.prob - best).abs() < 1e-12),
                None => assert_eq!(best, 0.0),
            }
        }
    }
}

#[test]
fn shared_evaluation_matches_standalone_runs() {
    let mut rng = StdRng::seed_from_u64(4242);
    let db = random_db(&mut rng, 50, true);
    let k = 8;
    let shared = SharedEvaluation::new(&db, k).unwrap();
    assert!((shared.quality() - quality_tp(&db, k).unwrap()).abs() < 1e-12);

    let rp = rank_probabilities(&db, k).unwrap();
    assert_eq!(shared.pt_k(0.1).unwrap(), pt_k(&db, &rp, 0.1).unwrap());
    assert_eq!(shared.global_topk(), global_topk(&db, &rp));
    assert_eq!(shared.u_k_ranks(), u_k_ranks(&db, &rp));

    // The quality breakdown used by the cleaning problem sums to the score.
    let breakdown = shared.quality_breakdown();
    let sum: f64 = breakdown.x_tuple_contribution.iter().sum();
    assert!((sum - shared.quality()).abs() < 1e-9);
}
