//! Property-based tests (proptest) of the core invariants.
//!
//! Rather than fixing specific databases, these tests let proptest generate
//! arbitrary x-tuple databases (including degenerate shapes: certain
//! tuples, zero-probability tuples, tied scores, sub-full mass) and check
//! the paper's structural invariants on every one of them.

use proptest::collection::vec;
use proptest::prelude::*;
use uncertain_topk::prelude::*;

/// Strategy: one x-tuple as a list of (score, weight) pairs; weights are
/// normalised so the total mass is `mass ≤ 1`.
fn x_tuple_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (vec((0.0f64..100.0, 0.01f64..1.0), 1..5), 0.05f64..1.0).prop_map(|(alts, mass)| {
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        alts.into_iter().map(|(score, w)| (score, w / total * mass)).collect()
    })
}

/// Strategy: a whole database of 1..8 x-tuples.
fn db_strategy() -> impl Strategy<Value = RankedDatabase> {
    vec(x_tuple_strategy(), 1..8)
        .prop_map(|x| RankedDatabase::from_scored_x_tuples(&x).expect("generated mass is valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank probabilities are probabilities, rows sum to the top-k
    /// probability, and the total expected answer size never exceeds k.
    #[test]
    fn psr_output_is_a_probability_assignment(db in db_strategy(), k in 1usize..6) {
        let rp = rank_probabilities(&db, k).unwrap();
        let mut total = 0.0;
        for pos in 0..db.len() {
            let mut row_sum = 0.0;
            for h in 1..=k {
                let p = rp.rank_prob(pos, h);
                prop_assert!((-1e-12..=1.0 + 1e-9).contains(&p));
                row_sum += p;
            }
            prop_assert!((row_sum - rp.top_k_prob(pos)).abs() < 1e-9);
            total += rp.top_k_prob(pos);
        }
        prop_assert!(total <= k as f64 + 1e-6);
    }

    /// For each rank h, at most one tuple can occupy it per world, so the
    /// rank-h probabilities across tuples sum to at most 1.
    #[test]
    fn rank_slots_are_not_oversubscribed(db in db_strategy(), k in 1usize..6) {
        let rp = rank_probabilities(&db, k).unwrap();
        for h in 1..=k {
            let slot_mass: f64 = (0..db.len()).map(|p| rp.rank_prob(p, h)).sum();
            prop_assert!(slot_mass <= 1.0 + 1e-9);
        }
    }

    /// Top-k probability is monotone in k: widening the answer can only
    /// increase a tuple's chance of being part of it.
    #[test]
    fn top_k_probability_is_monotone_in_k(db in db_strategy(), k in 1usize..5) {
        let small = rank_probabilities(&db, k).unwrap();
        let large = rank_probabilities(&db, k + 1).unwrap();
        for pos in 0..db.len() {
            prop_assert!(large.top_k_prob(pos) + 1e-9 >= small.top_k_prob(pos));
        }
    }

    /// The pw-result distribution is a probability distribution and the
    /// three quality algorithms agree on its entropy.
    #[test]
    fn quality_algorithms_agree(db in db_strategy(), k in 1usize..5) {
        let dist = pwr_result_distribution(&db, k).unwrap();
        prop_assert!((dist.total_prob() - 1.0).abs() < 1e-8);
        let pw = quality_pw(&db, k).unwrap();
        let tp = quality_tp(&db, k).unwrap();
        prop_assert!((dist.quality() - pw).abs() < 1e-8);
        prop_assert!((tp - pw).abs() < 1e-8);
        // Quality is bounded by [-log2(#results), 0].
        prop_assert!(pw <= 1e-9);
        prop_assert!(pw >= -(dist.len() as f64).log2() - 1e-9);
    }

    /// Collapsing an x-tuple (a successful cleaning) never increases the
    /// number of possible worlds and keeps the database valid.
    #[test]
    fn collapse_preserves_validity(db in db_strategy(), which in any::<prop::sample::Index>()) {
        let l = which.index(db.num_x_tuples());
        let members = db.x_tuple(l).members.clone();
        let keep = members[which.index(members.len())];
        let cleaned = db.collapse_x_tuple(l, keep).unwrap();
        prop_assert_eq!(cleaned.num_x_tuples(), db.num_x_tuples());
        prop_assert!(cleaned.world_count() <= db.world_count());
        prop_assert!(cleaned.x_tuple(l).members.len() == 1);
    }

    /// Theorem 2: cleaning never hurts in expectation, and the expected
    /// improvement is bounded by the total ambiguity |S|.
    #[test]
    fn expected_improvement_is_bounded(
        db in db_strategy(),
        k in 1usize..4,
        sc in 0.0f64..1.0,
        cost in 1u64..5,
        budget in 0u64..20,
    ) {
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let setup = CleaningSetup::uniform(db.num_x_tuples(), cost, sc).unwrap();
        let plan = plan_greedy(&ctx, &setup, budget).unwrap();
        prop_assert!(plan.validate(&setup, budget).is_ok());
        let improvement = expected_improvement(&ctx, &setup, &plan);
        prop_assert!(improvement >= -1e-12);
        prop_assert!(improvement <= -ctx.quality + 1e-9);
    }

    /// The greedy plan never beats the DP optimum, and both respect the
    /// budget.
    #[test]
    fn dp_dominates_greedy(
        db in db_strategy(),
        k in 1usize..4,
        budget in 0u64..15,
    ) {
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let setup = CleaningSetup::uniform(db.num_x_tuples(), 2, 0.7).unwrap();
        let dp = plan_dp(&ctx, &setup, budget).unwrap();
        let greedy = plan_greedy(&ctx, &setup, budget).unwrap();
        prop_assert!(dp.validate(&setup, budget).is_ok());
        prop_assert!(greedy.validate(&setup, budget).is_ok());
        let v_dp = expected_improvement(&ctx, &setup, &dp);
        let v_greedy = expected_improvement(&ctx, &setup, &greedy);
        prop_assert!(v_dp + 1e-9 >= v_greedy);
    }

    /// Theorem 2's closed form equals the exhaustive expectation over all
    /// cleaned databases (Equation 17) for small plans.
    #[test]
    fn theorem_2_matches_exhaustive_expectation(
        db in db_strategy(),
        k in 1usize..3,
        sc in 0.1f64..1.0,
    ) {
        let ctx = CleaningContext::prepare(&db, k).unwrap();
        let setup = CleaningSetup::uniform(db.num_x_tuples(), 1, sc).unwrap();
        // Clean the first candidate (if any) twice.
        let mut plan = CleaningPlan::empty(db.num_x_tuples());
        if let Some(&l) = ctx.candidates().first() {
            plan.set_count(l, 2);
        }
        let fast = expected_improvement(&ctx, &setup, &plan);
        let slow = expected_improvement_exhaustive(&db, k, &setup, &plan).unwrap();
        prop_assert!((fast - slow).abs() < 1e-7, "fast {} vs exhaustive {}", fast, slow);
    }
}
