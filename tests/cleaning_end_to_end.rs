//! End-to-end cleaning workflow on generated datasets: plan with every
//! algorithm, verify feasibility and ordering, execute plans by simulation
//! and confirm the realised quality gain tracks the expectation.

use rand::{rngs::StdRng, SeedableRng};
use uncertain_topk::gen::cleaning_params::{generate as gen_params, CleaningParamsConfig, ScPdf};
use uncertain_topk::gen::synthetic::{generate_ranked, SyntheticConfig};
use uncertain_topk::prelude::*;

fn small_synthetic() -> RankedDatabase {
    generate_ranked(&SyntheticConfig { num_x_tuples: 200, ..SyntheticConfig::paper_default() })
        .expect("generation succeeds")
}

#[test]
fn all_algorithms_produce_feasible_plans_with_expected_ordering() {
    let db = small_synthetic();
    let k = 10;
    let ctx = CleaningContext::prepare(&db, k).unwrap();
    let params = gen_params(db.num_x_tuples(), &CleaningParamsConfig::default());
    let setup = CleaningSetup::new(params.costs, params.sc_probs).unwrap();
    let budget = 60;

    let mut improvements = std::collections::HashMap::new();
    for algo in CleaningAlgorithm::ALL {
        // Average the random heuristics over several runs.
        let runs = if matches!(algo, CleaningAlgorithm::RandP | CleaningAlgorithm::RandU) {
            20
        } else {
            1
        };
        let mut total = 0.0;
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(run);
            let plan = algo.plan(&ctx, &setup, budget, &mut rng).unwrap();
            plan.validate(&setup, budget).unwrap();
            // Only candidate x-tuples are ever selected.
            for l in plan.selected() {
                assert!(ctx.candidates().contains(&l), "{algo} selected a useless x-tuple");
            }
            total += expected_improvement(&ctx, &setup, &plan);
        }
        improvements.insert(algo.name(), total / runs as f64);
    }

    let dp = improvements["DP"];
    let greedy = improvements["Greedy"];
    let rand_p = improvements["RandP"];
    let rand_u = improvements["RandU"];
    assert!(dp > 0.0);
    assert!(dp + 1e-9 >= greedy, "DP {dp} vs Greedy {greedy}");
    assert!(greedy + 1e-9 >= rand_p, "Greedy {greedy} vs RandP {rand_p}");
    assert!(greedy + 1e-9 >= rand_u, "Greedy {greedy} vs RandU {rand_u}");
    // Every improvement is capped by the total ambiguity.
    for (&name, &value) in &improvements {
        assert!(value <= -ctx.quality + 1e-9, "{name}");
        assert!(value >= 0.0, "{name}");
    }
}

#[test]
fn simulated_cleaning_tracks_the_expected_improvement() {
    let db =
        generate_ranked(&SyntheticConfig { num_x_tuples: 60, ..SyntheticConfig::paper_default() })
            .expect("generation succeeds");
    let k = 5;
    let ctx = CleaningContext::prepare(&db, k).unwrap();
    let setup = CleaningSetup::uniform(db.num_x_tuples(), 1, 0.7).unwrap();
    let plan = plan_greedy(&ctx, &setup, 20).unwrap();
    let expected = expected_improvement(&ctx, &setup, &plan);
    assert!(expected > 0.0);

    let trials = 300;
    let mut total = 0.0;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(trial);
        let cleaned = simulate_cleaning(&db, &setup, &plan, &mut rng)
            .unwrap()
            .expect("synthetic x-tuples have full mass, so they never vanish");
        total += quality_tp(&cleaned, k).unwrap() - ctx.quality;
    }
    let mean = total / trials as f64;
    let rel_err = (mean - expected).abs() / expected;
    assert!(
        rel_err < 0.15,
        "Monte-Carlo improvement {mean} should be within 15% of the expectation {expected}"
    );
}

#[test]
fn higher_sc_probability_buys_more_quality() {
    let db = small_synthetic();
    let k = 10;
    let ctx = CleaningContext::prepare(&db, k).unwrap();
    let mut previous = -1.0;
    for lo in [0.0, 0.5, 1.0] {
        let params = gen_params(
            db.num_x_tuples(),
            &CleaningParamsConfig {
                sc_pdf: ScPdf::Uniform { lo, hi: 1.0 },
                ..CleaningParamsConfig::default()
            },
        );
        let setup = CleaningSetup::new(params.costs, params.sc_probs).unwrap();
        let plan = plan_greedy(&ctx, &setup, 50).unwrap();
        let improvement = expected_improvement(&ctx, &setup, &plan);
        assert!(
            improvement + 1e-9 >= previous,
            "raising every sc-probability should never reduce the achievable improvement"
        );
        previous = improvement;
    }
}

#[test]
fn cleaning_with_unlimited_budget_and_certain_probes_removes_all_ambiguity() {
    let db =
        generate_ranked(&SyntheticConfig { num_x_tuples: 50, ..SyntheticConfig::paper_default() })
            .expect("generation succeeds");
    let k = 5;
    let ctx = CleaningContext::prepare(&db, k).unwrap();
    let setup = CleaningSetup::uniform(db.num_x_tuples(), 1, 1.0).unwrap();
    // Budget large enough to clean every candidate once.
    let plan = plan_greedy(&ctx, &setup, db.num_x_tuples() as u64).unwrap();
    let improvement = expected_improvement(&ctx, &setup, &plan);
    assert!((improvement - (-ctx.quality)).abs() < 1e-6, "all ambiguity should be removed");

    // And the simulation agrees: the cleaned database has quality 0.
    let mut rng = StdRng::seed_from_u64(0);
    let cleaned = simulate_cleaning(&db, &setup, &plan, &mut rng).unwrap().unwrap();
    assert!(quality_tp(&cleaned, k).unwrap().abs() < 1e-9);
}
