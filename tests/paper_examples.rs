//! End-to-end checks of the paper's running example (Tables I & II,
//! Figures 2 & 3) through the public facade crate.

use uncertain_topk::core::examples::{udb1, udb2};
use uncertain_topk::prelude::*;
use uncertain_topk::quality::{pw_result_distribution, pwr_result_distribution};

#[test]
fn table_one_and_two_shapes() {
    let db1 = udb1();
    let db2 = udb2();
    assert_eq!(db1.num_x_tuples(), 4);
    assert_eq!(db1.num_tuples(), 7);
    assert_eq!(db2.num_tuples(), 6);
    // udb2 is udb1 with sensor S3 cleaned to its 27 °C reading.
    assert!(db2.x_tuple(2).unwrap().is_certain());
}

#[test]
fn possible_world_probability_example() {
    // "a possible world W = {t0, t3, t4, t6} exists with probability 0.072"
    let ranked = udb1().rank_by(&ScoreRanking);
    let worlds: Vec<_> = pdb_core::world::worlds(&ranked).unwrap().collect();
    assert_eq!(worlds.len(), 8);
    let target_scores = [21.0, 22.0, 25.0, 26.0];
    let w = worlds
        .iter()
        .find(|w| {
            let scores: Vec<f64> =
                w.existing_positions().iter().map(|&p| ranked.tuple(p).score).collect();
            target_scores.iter().all(|s| scores.contains(s)) && scores.len() == 4
        })
        .expect("the world {t0, t3, t4, t6} exists");
    assert!((w.prob - 0.072).abs() < 1e-12);
}

#[test]
fn pt2_answer_matches_the_introduction() {
    // "If k = 2 and T = 0.4, then the answer of the PT-k query is {t1, t2, t5}"
    let db = udb1().rank_by(&ScoreRanking);
    let shared = SharedEvaluation::new(&db, 2).unwrap();
    let answer = shared.pt_k(0.4).unwrap();
    let ids: Vec<usize> = answer.tuples.iter().map(|t| t.id.0).collect();
    assert_eq!(ids, vec![1, 2, 5]);
}

#[test]
fn pw_result_counts_and_qualities_match_figures_2_and_3() {
    let db1 = udb1().rank_by(&ScoreRanking);
    let db2 = udb2().rank_by(&ScoreRanking);

    let dist1 = pwr_result_distribution(&db1, 2).unwrap();
    let dist2 = pwr_result_distribution(&db2, 2).unwrap();
    assert_eq!(dist1.len(), 7, "Figure 2 shows seven pw-results for udb1");
    assert_eq!(dist2.len(), 4, "Figure 3 shows four pw-results for udb2");

    assert!((dist1.quality() - (-2.55)).abs() < 0.005);
    assert!((dist2.quality() - (-1.85)).abs() < 0.005);

    // The example pw-result (t1, t2) has probability 0.28.
    let pw1 = pw_result_distribution(&db1, 2).unwrap();
    assert!(pw1.results.iter().any(|r| (r.prob - 0.28).abs() < 1e-12));
}

#[test]
fn cleaning_s3_turns_udb1_into_udb2_and_improves_quality() {
    let db1 = udb1().rank_by(&ScoreRanking);
    let q1 = quality_tp(&db1, 2).unwrap();
    let q2 = quality_tp(&udb2().rank_by(&ScoreRanking), 2).unwrap();
    assert!(q2 > q1, "udb2 must be less ambiguous than udb1");

    // The expected-improvement model agrees: cleaning S3 with certainty
    // yields an expected improvement of exactly -g(S3).
    let ctx = CleaningContext::prepare(&db1, 2).unwrap();
    let setup = CleaningSetup::uniform(4, 1, 1.0).unwrap();
    let mut plan = CleaningPlan::empty(4);
    plan.set_count(2, 1);
    let expected = expected_improvement(&ctx, &setup, &plan);
    assert!(expected > 0.0);
    // The realised improvement depends on which reading S3 turns out to
    // have; the expectation averages the 27 °C (udb2) and 25 °C outcomes.
    let q2_alt = {
        let pos_25 = db1.tuples().position(|t| t.score == 25.0).unwrap();
        let cleaned = db1.collapse_x_tuple(2, pos_25).unwrap();
        quality_tp(&cleaned, 2).unwrap()
    };
    let mixture = 0.6 * q2 + 0.4 * q2_alt;
    assert!((ctx.quality + expected - mixture).abs() < 1e-9);
}

#[test]
fn u_k_ranks_and_global_topk_answers_are_consistent_on_udb1() {
    let db = udb1().rank_by(&ScoreRanking);
    let shared = SharedEvaluation::new(&db, 2).unwrap();

    let uk = shared.u_k_ranks();
    assert_eq!(uk.k(), 2);
    // Every winner must hold the maximum rank probability for its rank.
    let rp = shared.rank_probabilities();
    for (h0, winner) in uk.winners.iter().enumerate() {
        let winner = winner.expect("both ranks are reachable on udb1");
        let best = (0..db.len()).map(|p| rp.rank_prob(p, h0 + 1)).fold(f64::MIN, f64::max);
        assert!((winner.prob - best).abs() < 1e-12);
    }

    let gt = shared.global_topk();
    assert_eq!(gt.len(), 2);
    // Global-topk returns the tuples with the two highest top-2
    // probabilities: t2 (0.7) and t5 (0.432).
    let probs: Vec<f64> = gt.tuples.iter().map(|t| t.prob).collect();
    assert!((probs[0] - 0.7).abs() < 1e-9);
    assert!((probs[1] - 0.432).abs() < 1e-9);
}
