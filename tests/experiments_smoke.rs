//! Smoke tests of the experiment harness: every figure driver runs at the
//! quick scale and produces well-formed output.

use uncertain_topk::experiments::{run, Scale, ALL_EXPERIMENTS};

#[test]
fn every_experiment_runs_at_quick_scale_and_renders() {
    // The heavyweight drivers are exercised individually by the harness's
    // own unit tests; here we run a representative subset end to end and
    // check the output contract (id, series, table, CSV) for each.
    for id in ["fig2-3", "fig4a", "fig4b", "fig5b", "fig6a", "fig6e"] {
        let result = run(id, Scale::Quick).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(result.id, id);
        assert!(!result.series.is_empty(), "{id} produced no series");
        assert!(
            result.series.iter().any(|s| !s.points.is_empty()),
            "{id} produced only empty series"
        );
        let table = result.to_table();
        assert!(table.contains(id));
        let csv = result.to_csv();
        assert!(csv.lines().count() >= 2, "{id} CSV should have a header and data");
    }
}

#[test]
fn experiment_list_covers_every_figure_of_the_evaluation() {
    // Figures 2-3, 4(a)-(f), 5(a)-(d), 6(a)-(g): 1 + 6 + 4 + 7 = 18 ids,
    // plus the beyond-the-paper experiments: adaptive re-planning
    // (`adaptive-n`, `adaptive-c`) and batched multi-query evaluation
    // (`batch-q`).
    assert_eq!(ALL_EXPERIMENTS.len(), 21);
    for prefix in ["fig4", "fig5", "fig6", "adaptive-", "batch-"] {
        assert!(ALL_EXPERIMENTS.iter().any(|id| id.starts_with(prefix)));
    }
}

#[test]
fn unknown_experiments_are_rejected_with_a_helpful_message() {
    let err = run("fig99", Scale::Quick).unwrap_err().to_string();
    assert!(err.contains("fig99"));
    assert!(err.contains("fig4a"), "the error should list the known ids");
}
