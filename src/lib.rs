//! # uncertain-topk
//!
//! A Rust reproduction of **"Cleaning Uncertain Data for Top-k Queries"**
//! (Mo, Cheng, Li, Cheung, Yang — ICDE 2013).
//!
//! This facade crate re-exports the workspace crates under a single name so
//! downstream users can depend on `uncertain-topk` alone:
//!
//! * [`core`] — the x-tuple probabilistic database model and possible-world
//!   semantics ([`pdb_core`]).
//! * [`engine`] — the PSR rank-probability algorithm and the probabilistic
//!   top-k query semantics U-kRanks, PT-k and Global-topk ([`pdb_engine`]).
//! * [`quality`] — PWS-quality computation: the PW, PWR and TP algorithms
//!   ([`pdb_quality`]).
//! * [`clean`] — budgeted cleaning: expected-improvement model and the DP,
//!   Greedy, RandP and RandU algorithms ([`pdb_clean`]).
//! * [`gen`] — the synthetic and MOV dataset generators used by the paper's
//!   evaluation ([`pdb_gen`]).
//! * [`store`] — durable binary snapshots, the probe-outcome write-ahead
//!   log and crash recovery for cleaning sessions ([`pdb_store`]).
//! * [`experiments`] — drivers that regenerate every figure of the
//!   evaluation section ([`pdb_experiments`]).
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_topk::prelude::*;
//!
//! // Table I of the paper: four temperature sensors.
//! let db = uncertain_topk::core::examples::udb1().rank_by(&ScoreRanking);
//!
//! // Evaluate a PT-2 query (threshold 0.4) and its PWS-quality.
//! let shared = SharedEvaluation::new(&db, 2).unwrap();
//! let answer = shared.pt_k(0.4).unwrap();
//! assert_eq!(answer.len(), 3); // {t1, t2, t5} in the paper
//! let quality = shared.quality();
//! assert!((quality - (-2.55)).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pdb_clean as clean;
pub use pdb_core as core;
pub use pdb_engine as engine;
pub use pdb_experiments as experiments;
pub use pdb_gen as gen;
pub use pdb_quality as quality;
pub use pdb_store as store;

/// One-stop prelude re-exporting the most commonly used items of every
/// workspace crate.
pub mod prelude {
    pub use pdb_clean::prelude::*;
    pub use pdb_core::prelude::*;
    pub use pdb_engine::prelude::*;
    pub use pdb_gen::prelude::*;
    pub use pdb_quality::prelude::*;
}
